//! Trace and profile exporters: JSONL, Chrome trace-event JSON, tables.
//!
//! All three render from in-memory records with deterministic ordering
//! and Rust's shortest-roundtrip float formatting, so identical runs
//! produce byte-identical artefacts.

use std::fmt::Write as _;

use tea_core::tablefmt::{fmt_pct, fmt_secs, Table};

use crate::collector::Record;
use crate::metrics::KernelStats;

/// Escape a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render records as JSONL: one JSON object per line, in collection
/// order. Timestamps are simulated seconds.
pub fn to_jsonl(records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        match r {
            Record::Open {
                id,
                parent,
                cat,
                name,
                t,
            } => {
                let _ = writeln!(
                    out,
                    "{{\"ev\":\"open\",\"id\":{id},\"parent\":{parent},\"cat\":\"{}\",\"name\":\"{}\",\"t\":{t}}}",
                    escape_json(cat),
                    escape_json(name),
                );
            }
            Record::Close { id, t } => {
                let _ = writeln!(out, "{{\"ev\":\"close\",\"id\":{id},\"t\":{t}}}");
            }
            Record::Complete {
                id,
                parent,
                cat,
                name,
                t0,
                t1,
            } => {
                let _ = writeln!(
                    out,
                    "{{\"ev\":\"span\",\"id\":{id},\"parent\":{parent},\"cat\":\"{}\",\"name\":\"{}\",\"t0\":{t0},\"t1\":{t1}}}",
                    escape_json(cat),
                    escape_json(name),
                );
            }
            Record::Instant {
                parent,
                cat,
                name,
                t,
            } => {
                let _ = writeln!(
                    out,
                    "{{\"ev\":\"event\",\"parent\":{parent},\"cat\":\"{}\",\"name\":\"{}\",\"t\":{t}}}",
                    escape_json(cat),
                    escape_json(name),
                );
            }
        }
    }
    out
}

/// Render records as Chrome trace-event JSON (`chrome://tracing` /
/// Perfetto "JSON array format", wrapped in a `traceEvents` object).
///
/// Open/close pairs become `"ph":"X"` complete events (duration known
/// once closed); instants become `"ph":"i"`. Timestamps are simulated
/// **microseconds**, which is what the trace viewer expects.
pub fn to_chrome(records: &[Record]) -> String {
    // Resolve open/close pairs to (open-record-index, t1).
    let mut closes: Vec<(u64, f64)> = Vec::new();
    for r in records {
        if let Record::Close { id, t } = r {
            closes.push((*id, *t));
        }
    }
    let close_time =
        |id: u64| -> Option<f64> { closes.iter().find(|(cid, _)| *cid == id).map(|(_, t)| *t) };
    let mut events: Vec<String> = Vec::new();
    for r in records {
        match r {
            Record::Open {
                id, cat, name, t, ..
            } => {
                // An unclosed span (crashed run) renders as zero-length.
                let t1 = close_time(*id).unwrap_or(*t);
                events.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":0}}",
                    escape_json(name),
                    escape_json(cat),
                    t * 1e6,
                    (t1 - t) * 1e6,
                ));
            }
            Record::Complete {
                cat, name, t0, t1, ..
            } => {
                events.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":0}}",
                    escape_json(name),
                    escape_json(cat),
                    t0 * 1e6,
                    (t1 - t0) * 1e6,
                ));
            }
            Record::Instant { cat, name, t, .. } => {
                events.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"ts\":{},\"s\":\"t\",\"pid\":0,\"tid\":0}}",
                    escape_json(name),
                    escape_json(cat),
                    t * 1e6,
                ));
            }
            Record::Close { .. } => {}
        }
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}\n",
        events.join(",")
    )
}

/// Order profile rows by descending time (name as the tiebreak so the
/// ordering is total and deterministic) and truncate to `top` (0 = all).
pub fn top_kernels<'a>(rows: &[(&'a str, KernelStats)], top: usize) -> Vec<(&'a str, KernelStats)> {
    let mut sorted: Vec<(&str, KernelStats)> = rows.to_vec();
    sorted.sort_by(|a, b| {
        b.1.seconds
            .partial_cmp(&a.1.seconds)
            .expect("finite kernel times")
            .then_with(|| a.0.cmp(b.0))
    });
    if top > 0 {
        sorted.truncate(top);
    }
    sorted
}

/// Render a per-kernel profile table: calls, seconds, share of total
/// kernel time, traffic, achieved bandwidth — and, when the device's
/// STREAM bandwidth is supplied, the per-kernel Figure 12 fraction.
pub fn profile_table(
    title: &str,
    rows: &[(&str, KernelStats)],
    stream_bw_gbs: Option<f64>,
    top: usize,
) -> Table {
    let total: f64 = rows.iter().map(|(_, s)| s.seconds).sum();
    let mut header = vec!["kernel", "calls", "seconds", "time%", "GB", "GB/s"];
    if stream_bw_gbs.is_some() {
        header.push("STREAM%");
    }
    let mut table = Table::new(title, &header);
    for (name, stats) in top_kernels(rows, top) {
        let mut cells = vec![
            name.to_string(),
            stats.count.to_string(),
            fmt_secs(stats.seconds),
            fmt_pct(if total > 0.0 {
                stats.seconds / total
            } else {
                0.0
            }),
            format!("{:.3}", stats.bytes as f64 / 1e9),
            format!("{:.1}", stats.bw_gbs()),
        ];
        if let Some(bw) = stream_bw_gbs {
            cells.push(fmt_pct(stats.bw_gbs() / bw));
        }
        table.row(&cells);
    }
    table
}

/// Render a per-kernel energy table: calls, seconds, joules, share of
/// total energy and average power draw, hottest (most joules) kernel
/// first. `transfer_joules` and `idle_joules` append as footer rows so
/// the table accounts for the whole budget; the final `total` row is
/// the same left-to-right fold the `--validate` check recomputes.
pub fn energy_table(
    title: &str,
    rows: &[(&str, KernelStats)],
    transfer_joules: f64,
    idle_joules: f64,
    top: usize,
) -> Table {
    let kernel_total: f64 = rows.iter().map(|(_, s)| s.joules).sum();
    let total = kernel_total + transfer_joules + idle_joules;
    let mut sorted: Vec<(&str, KernelStats)> = rows.to_vec();
    sorted.sort_by(|a, b| {
        b.1.joules
            .partial_cmp(&a.1.joules)
            .expect("finite kernel energies")
            .then_with(|| a.0.cmp(b.0))
    });
    if top > 0 {
        sorted.truncate(top);
    }
    let mut table = Table::new(title, &["kernel", "calls", "seconds", "J", "J%", "avg W"]);
    let share = |j: f64| fmt_pct(if total > 0.0 { j / total } else { 0.0 });
    for (name, stats) in sorted {
        table.row(&[
            name.to_string(),
            stats.count.to_string(),
            fmt_secs(stats.seconds),
            format!("{:.6}", stats.joules),
            share(stats.joules),
            format!("{:.1}", stats.avg_watts()),
        ]);
    }
    table.row(&[
        "(transfers)".to_string(),
        String::new(),
        String::new(),
        format!("{transfer_joules:.6}"),
        share(transfer_joules),
        String::new(),
    ]);
    table.row(&[
        "(idle)".to_string(),
        String::new(),
        String::new(),
        format!("{idle_joules:.6}"),
        share(idle_joules),
        String::new(),
    ]);
    table.row(&[
        "total".to_string(),
        String::new(),
        String::new(),
        format!("{total:.6}"),
        fmt_pct(if total > 0.0 { 1.0 } else { 0.0 }),
        String::new(),
    ]);
    table
}

/// Render per-kernel energy rows as JSONL `"ev":"energy"` records, in
/// name order, closing with one `"ev":"energy_total"` summary record.
/// Appended after the span stream so an energy-annotated trace stays
/// line-parseable by the same validator.
pub fn energy_to_jsonl(
    rows: &[(&str, KernelStats)],
    transfer_joules: f64,
    idle_joules: f64,
    total_joules: f64,
) -> String {
    let mut sorted: Vec<(&str, KernelStats)> = rows.to_vec();
    sorted.sort_by(|a, b| a.0.cmp(b.0));
    let mut out = String::new();
    for (name, stats) in sorted {
        let _ = writeln!(
            out,
            "{{\"ev\":\"energy\",\"kernel\":\"{}\",\"calls\":{},\"seconds\":{},\"joules\":{}}}",
            escape_json(name),
            stats.count,
            stats.seconds,
            stats.joules,
        );
    }
    let _ = writeln!(
        out,
        "{{\"ev\":\"energy_total\",\"transfer_joules\":{transfer_joules},\
         \"idle_joules\":{idle_joules},\"total_joules\":{total_joules}}}"
    );
    out
}

/// Render per-kernel energy rows as Chrome trace counter events
/// (`"ph":"C"`), one per kernel in name order plus transfer/idle/total
/// counters, all at ts 0 (they summarise the whole run). Returns the
/// bare event list for splicing into a `traceEvents` array.
pub fn energy_to_chrome_events(
    rows: &[(&str, KernelStats)],
    transfer_joules: f64,
    idle_joules: f64,
    total_joules: f64,
) -> Vec<String> {
    let mut sorted: Vec<(&str, KernelStats)> = rows.to_vec();
    sorted.sort_by(|a, b| a.0.cmp(b.0));
    let counter = |name: &str, joules: f64| {
        format!(
            "{{\"name\":\"energy:{}\",\"cat\":\"energy\",\"ph\":\"C\",\"ts\":0,\
             \"pid\":0,\"tid\":0,\"args\":{{\"joules\":{joules}}}}}",
            escape_json(name),
        )
    };
    let mut events: Vec<String> = sorted
        .iter()
        .map(|(name, stats)| counter(name, stats.joules))
        .collect();
    events.push(counter("(transfers)", transfer_joules));
    events.push(counter("(idle)", idle_joules));
    events.push(counter("total", total_joules));
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::TelemetrySink;
    use crate::json;

    fn sample_records() -> Vec<Record> {
        let (sink, collector) = TelemetrySink::collecting();
        let step = sink.open_span("step", format_args!("step 1"), 0.0);
        sink.complete_span("kernel", format_args!("cg_calc_w \"q\""), 0.001, 0.002);
        sink.event("halo", format_args!("p d1"), 0.003);
        sink.close_span(step, 0.004);
        collector.records()
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let text = to_jsonl(&sample_records());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            let value = json::parse(line).expect("valid JSON line");
            let obj = value.as_object().expect("object");
            assert!(obj.iter().any(|(k, _)| k == "ev"));
        }
        assert!(lines[0].contains("\"ev\":\"open\""));
        assert!(
            lines[1].contains("\\\"q\\\""),
            "quotes escaped: {}",
            lines[1]
        );
        assert!(lines[3].contains("\"ev\":\"close\""));
    }

    #[test]
    fn chrome_trace_parses_and_has_expected_phases() {
        let text = to_chrome(&sample_records());
        let value = json::parse(&text).expect("valid chrome trace");
        let events = value
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        assert_eq!(events.len(), 3, "open/close collapse to one X event");
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").and_then(|p| p.as_str()).expect("ph"))
            .collect();
        assert_eq!(phases, vec!["X", "X", "i"]);
        // the step span's duration covers the whole run, in microseconds
        let dur = events[0].get("dur").and_then(|d| d.as_f64()).expect("dur");
        assert!((dur - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn exporters_are_deterministic() {
        let a = sample_records();
        let b = sample_records();
        assert_eq!(to_jsonl(&a), to_jsonl(&b));
        assert_eq!(to_chrome(&a), to_chrome(&b));
    }

    #[test]
    fn profile_table_sorts_and_truncates() {
        let rows = vec![
            (
                "small",
                KernelStats {
                    count: 1,
                    seconds: 0.1,
                    bytes: 1_000_000_000,
                    flops: 0,
                    joules: 10.0,
                },
            ),
            (
                "big",
                KernelStats {
                    count: 2,
                    seconds: 0.9,
                    bytes: 90_000_000_000,
                    flops: 0,
                    joules: 90.0,
                },
            ),
        ];
        let table = profile_table("profile", &rows, Some(200.0), 1);
        let text = table.render();
        assert!(text.contains("big"));
        assert!(!text.contains("small"), "truncated to top 1:\n{text}");
        assert!(text.contains("90.0%"), "time share:\n{text}");
        assert!(text.contains("50.0%"), "STREAM fraction 100/200:\n{text}");
    }

    #[test]
    fn top_kernels_ties_break_by_name() {
        let s = KernelStats {
            count: 1,
            seconds: 1.0,
            bytes: 0,
            flops: 0,
            joules: 0.0,
        };
        let rows = vec![("b", s), ("a", s)];
        let sorted = top_kernels(&rows, 0);
        assert_eq!(sorted[0].0, "a");
        assert_eq!(sorted[1].0, "b");
    }

    fn energy_rows() -> Vec<(&'static str, KernelStats)> {
        let mut hot = KernelStats::default();
        hot.charge(0.5, 1_000_000, 10, 120.0);
        let mut cool = KernelStats::default();
        cool.charge(0.25, 500_000, 5, 30.0);
        vec![("cool_kernel", cool), ("hot_kernel", hot)]
    }

    #[test]
    fn energy_table_sorts_by_joules_and_accounts_for_the_budget() {
        let table = energy_table("energy", &energy_rows(), 40.0, 10.0, 0);
        let text = table.render();
        let hot = text.find("hot_kernel").expect("hot row");
        let cool = text.find("cool_kernel").expect("cool row");
        assert!(hot < cool, "most joules first:\n{text}");
        // 120 of a 200 J budget
        assert!(text.contains("60.0%"), "energy share:\n{text}");
        assert!(text.contains("(transfers)"), "{text}");
        assert!(text.contains("(idle)"), "{text}");
        assert!(text.contains("200.000000"), "total row:\n{text}");
        // 120 J over 0.5 s = 240 W
        assert!(text.contains("240.0"), "average watts:\n{text}");
    }

    #[test]
    fn energy_jsonl_parses_and_ends_with_the_total() {
        let text = energy_to_jsonl(&energy_rows(), 40.0, 10.0, 200.0);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            json::parse(line).expect("valid JSON line");
        }
        assert!(lines[0].contains("\"ev\":\"energy\""));
        assert!(lines[0].contains("cool_kernel"), "name order: {}", lines[0]);
        assert!(lines[2].contains("\"ev\":\"energy_total\""));
        assert!(lines[2].contains("\"total_joules\":200"));
    }

    #[test]
    fn energy_chrome_counters_parse_with_ph_c() {
        let events = energy_to_chrome_events(&energy_rows(), 40.0, 10.0, 200.0);
        assert_eq!(events.len(), 5, "2 kernels + transfers + idle + total");
        let doc = format!("{{\"traceEvents\":[{}]}}", events.join(","));
        let value = json::parse(&doc).expect("valid chrome fragment");
        let events = value
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("array");
        for ev in events {
            assert_eq!(ev.get("ph").and_then(|p| p.as_str()), Some("C"));
            assert!(ev.get("args").is_some());
        }
    }

    #[test]
    fn energy_exporters_are_deterministic() {
        let rows = energy_rows();
        assert_eq!(
            energy_to_jsonl(&rows, 1.0, 2.0, 3.0),
            energy_to_jsonl(&rows, 1.0, 2.0, 3.0)
        );
        assert_eq!(
            energy_to_chrome_events(&rows, 1.0, 2.0, 3.0),
            energy_to_chrome_events(&rows, 1.0, 2.0, 3.0)
        );
    }
}
