#![allow(clippy::needless_range_loop)]
//! Property-based tests for Segments and IndexSets.

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

use parpool::SerialExec;
use raja_rs::{forall, IndexSet, ListSegment, RajaRuntime, RangeSegment, Segment, SeqExec};
use simdev::{devices, KernelProfile, ModelProfile, SimContext};

proptest! {
    #[test]
    fn interior_list_covers_exactly_the_interior(
        width in 5usize..40,
        height in 5usize..40,
        halo in 1usize..=2,
    ) {
        let list = ListSegment::interior_2d(width, height, halo);
        let expect = (width - 2 * halo) * (height - 2 * halo);
        prop_assert_eq!(list.len(), expect);
        // every listed index is interior, no duplicates, sorted row-major
        let mut prev = None;
        for &k in list.indices() {
            let (i, j) = (k % width, k / width);
            prop_assert!(i >= halo && i < width - halo);
            prop_assert!(j >= halo && j < height - halo);
            if let Some(p) = prev {
                prop_assert!(k > p, "row-major order");
            }
            prev = Some(k);
        }
    }

    #[test]
    fn forall_visits_each_segment_index_once(
        begin in 0usize..100,
        len in 0usize..200,
        extra in proptest::collection::btree_set(300usize..600, 0..50),
    ) {
        let ctx = SimContext::new(devices::cpu_xeon_e5_2670_x2(), ModelProfile::ideal("RAJA"), vec![], 0);
        let rt = RajaRuntime::new(&ctx, &SerialExec);
        let mut set = IndexSet::new();
        set.push_range(RangeSegment::new(begin, begin + len));
        set.push_list(ListSegment::new(extra.iter().copied().collect()));
        let counters: Vec<AtomicUsize> = (0..700).map(|_| AtomicUsize::new(0)).collect();
        let profile = KernelProfile::streaming("k", set.len().max(1) as u64, 1, 0, 0);
        for seg in set.segments() {
            forall::<SeqExec>(&rt, seg, &profile, &|i| {
                counters[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        let total: usize = counters.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        prop_assert_eq!(total, set.len());
        for i in begin..begin + len {
            prop_assert_eq!(counters[i].load(Ordering::Relaxed), 1);
        }
        for &i in &extra {
            prop_assert_eq!(counters[i].load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn segment_at_enumerates_in_order(begin in 0usize..1000, len in 1usize..500) {
        let seg = Segment::Range(RangeSegment::new(begin, begin + len));
        for k in 0..len {
            prop_assert_eq!(seg.at(k), begin + k);
        }
    }
}
