//! The Kokkos port (flat-range) and the `Kokkos HP` variant.
//!
//! Following §3.3: every field lives in a 1-D device `View` over the
//! flattened padded grid ("each functor in Kokkos flattens the iteration
//! space and provides a single index parameter"); grid kernels iterate the
//! *whole* padded range and re-derive `(i, j)` with a div/mod, skipping
//! halo cells with a **conditional in the functor body** — the pattern
//! Intel's native KNC compilation handles badly, charged via the
//! `interior_branch` kernel trait.
//!
//! The `Kokkos HP` variant is Sandia's fix (Figure 7): hierarchical
//! parallelism with a league of teams over interior rows and
//! `team_thread_range` over columns, which re-encodes the halo exclusion
//! into the iteration space (no branch) at the price of per-team dispatch
//! overhead — hurting the GPU Chebyshev/PPCG results by >20 % while
//! roughly halving KNC CG/PPCG time (§4.2, §4.3).

use kokkos_rs::{deep_copy, ExecutionSpace, Functor, RangePolicy, TeamPolicy, View};
use parpool::{Executor, StaticPool};
use simdev::{DeviceSpec, KernelProfile, SimContext};
use tea_core::config::Coefficient;
use tea_core::halo::{update_halo_batch, FieldId};
use tea_core::mesh::Mesh2d;
use tea_core::summary::Summary;

use crate::kernels::{NormField, TeaLeafPort};
use crate::model_id::ModelId;
use crate::ports::common::{self, profiles, Us};
use crate::problem::Problem;

/// Kokkos TeaLeaf (flat or hierarchical-parallelism).
pub struct KokkosPort {
    model: ModelId,
    hp: bool,
    ctx: SimContext,
    mesh: Mesh2d,
    density: View,
    energy: View,
    u: View,
    u0: View,
    p: View,
    r: View,
    w: View,
    z: View,
    kx: View,
    ky: View,
    sd: View,
}

/// True when flat index `k` is an interior cell — the loop-body halo
/// guard of the flat port.
#[inline(always)]
fn in_interior(mesh: &Mesh2d, k: usize) -> bool {
    let width = mesh.width();
    let (i, j) = (k % width, k / width);
    i >= mesh.i0() && i < mesh.i1() && j >= mesh.i0() && j < mesh.j1()
}

/// Dispatch a non-reduction grid kernel: flat range plus body guard
/// (`hp == false`) or a league of row teams (`hp == true`).
fn grid_for(
    hp: bool,
    mesh: &Mesh2d,
    space: &ExecutionSpace<'_>,
    profile: &KernelProfile,
    f: &(dyn Fn(usize) + Sync),
) {
    if hp {
        let (i0, i1) = (mesh.i0(), mesh.i1());
        let width = mesh.width();
        let cols = i1 - i0;
        space.team_parallel_for(
            profile,
            TeamPolicy {
                league_size: mesh.y_cells,
                team_size: 8,
            },
            &|member| {
                let j = i0 + member.league_rank;
                member.team_thread_range(cols, |ii| f(common::idx(width, i0 + ii, j)));
            },
        );
    } else {
        space.parallel_for(profile, RangePolicy::new(0, mesh.len()), &|k| {
            if in_interior(mesh, k) {
                f(k);
            }
        });
    }
}

/// Dispatch a fused reduction kernel: per-row partials in row order for
/// both variants, so results match every other port bit-for-bit.
fn grid_reduce(
    hp: bool,
    mesh: &Mesh2d,
    space: &ExecutionSpace<'_>,
    profile: &KernelProfile,
    f: &(dyn Fn(usize) -> f64 + Sync),
) -> f64 {
    let (i0, i1) = (mesh.i0(), mesh.i1());
    let width = mesh.width();
    let cols = i1 - i0;
    if hp {
        space.team_parallel_reduce(
            profile,
            TeamPolicy {
                league_size: mesh.y_cells,
                team_size: 8,
            },
            &|member| {
                let j = i0 + member.league_rank;
                member.team_thread_reduce(cols, |ii| f(common::idx(width, i0 + ii, j)))
            },
        )
    } else {
        space.parallel_reduce(profile, RangePolicy::new(0, mesh.y_cells), &|jj| {
            let j = i0 + jj;
            let mut acc = 0.0;
            for ii in 0..cols {
                acc += f(common::idx(width, i0 + ii, j));
            }
            acc
        })
    }
}

/// The paper-era functor form of the `init_u0` kernel (§2.4: "the
/// function operator is overloaded and encapsulates the core functional
/// logic … Views are declared as local variables inside the class") —
/// including the §3.3 halo-exclusion conditional in the functor body that
/// the flat port is charged for. The other kernels use the succinct
/// lambda style the paper could not (CUDA 7.0); keeping one functor
/// exhibits the verbosity difference the paper discusses.
struct InitU0Functor<'a> {
    mesh: &'a Mesh2d,
    density: &'a [f64],
    energy: &'a [f64],
    u0: Us<'a>,
    u: Us<'a>,
}

impl Functor for InitU0Functor<'_> {
    fn operator(&self, k: usize) {
        if in_interior(self.mesh, k) {
            // SAFETY: cells disjoint.
            unsafe { common::cell_init_u0(k, self.density, self.energy, &self.u0, &self.u) };
        }
    }
}

impl KokkosPort {
    /// Build the port; `model` must be `Kokkos` or `KokkosHP`.
    pub fn new(model: ModelId, device: DeviceSpec, problem: &Problem, seed: u64) -> Self {
        let hp = match model {
            ModelId::Kokkos => false,
            ModelId::KokkosHP => true,
            other => panic!("KokkosPort cannot implement {other:?}"),
        };
        let ctx = common::make_context(model, device, problem, seed);
        let mesh = problem.mesh.clone();
        let len = mesh.len();
        let dev = |label: &str| View::device(label, len, 1);
        let mut port = KokkosPort {
            model,
            hp,
            ctx,
            mesh,
            density: dev("density"),
            energy: dev("energy"),
            u: dev("u"),
            u0: dev("u0"),
            p: dev("p"),
            r: dev("r"),
            w: dev("w"),
            z: dev("z"),
            kx: dev("kx"),
            ky: dev("ky"),
            sd: dev("sd"),
        };
        // create_mirror_view + deep_copy: host → device for the inputs.
        let mut h = View::host("h_mirror", len, 1);
        h.raw_mut().copy_from_slice(problem.density.as_slice());
        deep_copy(&port.ctx, &mut port.density, &h);
        h.raw_mut().copy_from_slice(problem.energy.as_slice());
        deep_copy(&port.ctx, &mut port.energy, &h);
        port
    }

    fn pool(&self) -> &'static StaticPool {
        parpool::global_static()
    }

    fn n(&self) -> u64 {
        profiles::cells(&self.mesh)
    }

    /// Finalise a grid-kernel profile: the flat port's halo guard is a
    /// loop-body branch; HP has none.
    fn grid_profile(&self, p: KernelProfile) -> KernelProfile {
        if self.hp {
            p
        } else {
            p.with_interior_branch()
        }
    }

    /// Borrow the mesh alongside the raw storage of each listed field,
    /// for the batched halo update. Panics if a `View` is listed twice.
    fn halo_views(&mut self, ids: &[FieldId]) -> (&Mesh2d, Vec<&mut [f64]>) {
        let KokkosPort {
            mesh,
            density,
            energy,
            u,
            u0,
            p,
            r,
            w,
            z,
            kx,
            ky,
            sd,
            ..
        } = self;
        let mut slots = [
            Some(density),
            Some(energy),
            Some(u),
            Some(u0),
            Some(p),
            Some(r),
            Some(w),
            Some(z),
            Some(kx),
            Some(ky),
            Some(sd),
        ];
        let views = ids
            .iter()
            .map(|&id| {
                let slot = match id {
                    FieldId::Density => 0,
                    FieldId::Energy0 | FieldId::Energy1 => 1,
                    FieldId::U => 2,
                    FieldId::U0 => 3,
                    FieldId::P => 4,
                    FieldId::R => 5,
                    FieldId::W => 6,
                    FieldId::Z | FieldId::Mi => 7,
                    FieldId::Kx => 8,
                    FieldId::Ky => 9,
                    FieldId::Sd => 10,
                };
                slots[slot]
                    .take()
                    .unwrap_or_else(|| panic!("{} batched twice in one halo update", id.name()))
                    .raw_mut()
            })
            .collect();
        (&*mesh, views)
    }
}

impl TeaLeafPort for KokkosPort {
    fn model(&self) -> ModelId {
        self.model
    }

    fn context(&self) -> &SimContext {
        &self.ctx
    }

    fn context_mut(&mut self) -> &mut SimContext {
        &mut self.ctx
    }

    fn init_fields(&mut self, coefficient: Coefficient, rx: f64, ry: f64) {
        let mesh = &self.mesh;
        let hp = self.hp;
        let p_u0 = self.grid_profile(profiles::init_u0(self.n()));
        let p_k = self.grid_profile(profiles::init_coeffs(self.n()));
        let pool = self.pool();
        {
            let space = ExecutionSpace::new(&self.ctx, pool);
            let (density, energy) = (self.density.raw(), self.energy.raw());
            let u0 = Us::new(self.u0.raw_mut());
            let u = Us::new(self.u.raw_mut());
            if hp {
                grid_for(hp, mesh, &space, &p_u0, &|k| {
                    // SAFETY: cells disjoint.
                    unsafe { common::cell_init_u0(k, density, energy, &u0, &u) };
                });
            } else {
                // functor style over the flat padded range, guard inside
                let functor = InitU0Functor {
                    mesh,
                    density,
                    energy,
                    u0,
                    u,
                };
                space.parallel_for_functor(&p_u0, RangePolicy::new(0, mesh.len()), &functor);
            }
        }
        // Coefficients cover i0..=i1 / i0..=j1 — one cell beyond the
        // interior on the high sides, expressed as an extended-range
        // functor.
        let space = ExecutionSpace::new(&self.ctx, pool);
        let width = mesh.width();
        let (lo, i1, j1) = (mesh.i0(), mesh.i1(), mesh.j1());
        let density = self.density.raw();
        let kx = Us::new(self.kx.raw_mut());
        let ky = Us::new(self.ky.raw_mut());
        space.parallel_for(&p_k, RangePolicy::new(0, mesh.len()), &|k| {
            let (i, j) = (k % width, k / width);
            if i >= lo && i <= i1 && j >= lo && j <= j1 {
                // SAFETY: cells disjoint.
                unsafe {
                    common::cell_init_coeffs(width, k, coefficient, rx, ry, density, &kx, &ky)
                };
            }
        });
    }

    fn halo_update(&mut self, fields: &[FieldId], depth: usize) {
        // One launch charge per field (unchanged), all ghost writes as one
        // batched dispatch on the execution space's pool.
        let profile = profiles::halo(&self.mesh, depth);
        for _ in fields {
            self.ctx.launch(&profile);
        }
        let pool = self.pool();
        let (mesh, mut slices) = self.halo_views(fields);
        update_halo_batch(mesh, &mut slices, depth, pool);
    }

    fn cg_init(&mut self, preconditioner: bool) -> f64 {
        let mesh = &self.mesh;
        let hp = self.hp;
        let profile = self.grid_profile(profiles::cg_init(self.n(), preconditioner));
        let pool = self.pool();
        let space = ExecutionSpace::new(&self.ctx, pool);
        let width = mesh.width();
        let (u, u0, kx, ky) = (self.u.raw(), self.u0.raw(), self.kx.raw(), self.ky.raw());
        let w = Us::new(self.w.raw_mut());
        let r = Us::new(self.r.raw_mut());
        let p = Us::new(self.p.raw_mut());
        let z = Us::new(self.z.raw_mut());
        grid_reduce(hp, mesh, &space, &profile, &|k| {
            // SAFETY: cells disjoint.
            unsafe { common::cell_cg_init(width, k, preconditioner, u, u0, kx, ky, &w, &r, &p, &z) }
        })
    }

    fn cg_calc_w(&mut self) -> f64 {
        let mesh = &self.mesh;
        let hp = self.hp;
        let profile = self.grid_profile(profiles::cg_calc_w(self.n()));
        let space = ExecutionSpace::new(&self.ctx, self.pool());
        let width = mesh.width();
        let (p, kx, ky) = (self.p.raw(), self.kx.raw(), self.ky.raw());
        let w = Us::new(self.w.raw_mut());
        grid_reduce(hp, mesh, &space, &profile, &|k| {
            // SAFETY: cells disjoint.
            unsafe { common::cell_cg_calc_w(width, k, p, kx, ky, &w) }
        })
    }

    fn cg_calc_ur(&mut self, alpha: f64, preconditioner: bool) -> f64 {
        let mesh = &self.mesh;
        let hp = self.hp;
        let profile = self.grid_profile(profiles::cg_calc_ur(self.n(), preconditioner));
        let space = ExecutionSpace::new(&self.ctx, self.pool());
        let width = mesh.width();
        let (p, w, kx, ky) = (self.p.raw(), self.w.raw(), self.kx.raw(), self.ky.raw());
        let u = Us::new(self.u.raw_mut());
        let r = Us::new(self.r.raw_mut());
        let z = Us::new(self.z.raw_mut());
        grid_reduce(hp, mesh, &space, &profile, &|k| {
            // SAFETY: cells disjoint.
            unsafe {
                common::cell_cg_calc_ur(width, k, alpha, preconditioner, p, w, kx, ky, &u, &r, &z)
            }
        })
    }

    fn cg_calc_p(&mut self, beta: f64, preconditioner: bool) {
        let mesh = &self.mesh;
        let hp = self.hp;
        let profile = self.grid_profile(profiles::cg_calc_p(self.n()));
        let space = ExecutionSpace::new(&self.ctx, self.pool());
        let (r, z) = (self.r.raw(), self.z.raw());
        let p = Us::new(self.p.raw_mut());
        grid_for(hp, mesh, &space, &profile, &|k| {
            // SAFETY: cells disjoint.
            unsafe { common::cell_cg_calc_p(k, beta, preconditioner, r, z, &p) };
        });
    }

    fn lowering_caps(&self) -> crate::ir::LoweringCaps {
        crate::ir::LoweringCaps { fused_launch: true }
    }

    fn cg_fused_ur_p(&mut self, alpha: f64, rro: f64, preconditioner: bool) -> (f64, f64) {
        let mesh = &self.mesh;
        let (h, t) = profiles::fused_pair(
            crate::ir::FusionKind::CgTail,
            self.n(),
            preconditioner,
            self.lowering_caps(),
        );
        let p_ur = self.grid_profile(h);
        let p_tail = self.grid_profile(t);
        let pool = self.pool();
        // One launch covers both sweeps (the p-update is a zero-overhead
        // tail); they run directly on the execution space's pool with the
        // same row-ordered arithmetic as the unfused
        // `grid_reduce`/`grid_for` pair (both variants of which fold
        // per-row partials in row order).
        self.ctx.launch(&p_ur);
        self.ctx.launch(&p_tail);
        let width = mesh.width();
        let (i0, i1) = (mesh.i0(), mesh.i1());
        let rrn = {
            let (p, w, kx, ky) = (self.p.raw(), self.w.raw(), self.kx.raw(), self.ky.raw());
            let u = Us::new(self.u.raw_mut());
            let r = Us::new(self.r.raw_mut());
            let z = Us::new(self.z.raw_mut());
            pool.run_sum(mesh.y_cells, &|jj| {
                let j = i0 + jj;
                let mut acc = 0.0;
                for i in i0..i1 {
                    // SAFETY: cells disjoint.
                    acc += unsafe {
                        common::cell_cg_calc_ur(
                            width,
                            common::idx(width, i, j),
                            alpha,
                            preconditioner,
                            p,
                            w,
                            kx,
                            ky,
                            &u,
                            &r,
                            &z,
                        )
                    };
                }
                acc
            })
        };
        let beta = rrn / rro;
        let (r, z) = (self.r.raw(), self.z.raw());
        let p = Us::new(self.p.raw_mut());
        pool.run(mesh.y_cells, &|jj| {
            let j = i0 + jj;
            for i in i0..i1 {
                // SAFETY: cells disjoint.
                unsafe {
                    common::cell_cg_calc_p(common::idx(width, i, j), beta, preconditioner, r, z, &p)
                };
            }
        });
        (rrn, beta)
    }

    fn cheby_init(&mut self, theta: f64) {
        self.cheby_step(true, theta, 0.0, 0.0);
    }

    fn cheby_iterate(&mut self, alpha: f64, beta: f64) {
        self.cheby_step(false, 0.0, alpha, beta);
    }

    fn ppcg_init_sd(&mut self, theta: f64) {
        let mesh = &self.mesh;
        let hp = self.hp;
        let profile = self.grid_profile(profiles::ppcg_init_sd(self.n()));
        let space = ExecutionSpace::new(&self.ctx, self.pool());
        let r = self.r.raw();
        let sd = Us::new(self.sd.raw_mut());
        grid_for(hp, mesh, &space, &profile, &|k| {
            // SAFETY: cells disjoint.
            unsafe { common::cell_sd_init(k, theta, r, &sd) };
        });
    }

    fn ppcg_inner(&mut self, alpha: f64, beta: f64) {
        let mesh = &self.mesh;
        let hp = self.hp;
        let (h, t) = profiles::fused_pair(
            crate::ir::FusionKind::PpcgInner,
            self.n(),
            false,
            self.lowering_caps(),
        );
        let p_w = self.grid_profile(h);
        let p_up = self.grid_profile(t);
        let pool = self.pool();
        let width = mesh.width();
        {
            let space = ExecutionSpace::new(&self.ctx, pool);
            let (sd, kx, ky) = (self.sd.raw(), self.kx.raw(), self.ky.raw());
            let w = Us::new(self.w.raw_mut());
            grid_for(hp, mesh, &space, &p_w, &|k| {
                // SAFETY: cells disjoint.
                unsafe { common::cell_ppcg_w(width, k, sd, kx, ky, &w) };
            });
        }
        let space = ExecutionSpace::new(&self.ctx, pool);
        let w = self.w.raw();
        let u = Us::new(self.u.raw_mut());
        let r = Us::new(self.r.raw_mut());
        let sd = Us::new(self.sd.raw_mut());
        grid_for(hp, mesh, &space, &p_up, &|k| {
            // SAFETY: cells disjoint.
            unsafe { common::cell_ppcg_update(k, alpha, beta, w, &u, &r, &sd) };
        });
    }

    fn jacobi_iterate(&mut self) -> f64 {
        let mesh = &self.mesh;
        let hp = self.hp;
        let p_copy = self.grid_profile(profiles::jacobi_copy(self.n()));
        let p_it = self.grid_profile(profiles::jacobi_iterate(self.n()));
        let pool = self.pool();
        let width = mesh.width();
        {
            let space = ExecutionSpace::new(&self.ctx, pool);
            let u = self.u.raw();
            let r = Us::new(self.r.raw_mut());
            grid_for(hp, mesh, &space, &p_copy, &|k| {
                // SAFETY: cells disjoint.
                unsafe { r.set(k, u[k]) };
            });
        }
        let space = ExecutionSpace::new(&self.ctx, pool);
        let (u0, r, kx, ky) = (self.u0.raw(), self.r.raw(), self.kx.raw(), self.ky.raw());
        let u = Us::new(self.u.raw_mut());
        grid_reduce(hp, mesh, &space, &p_it, &|k| {
            // SAFETY: cells disjoint.
            unsafe { common::cell_jacobi_iterate(width, k, u0, r, kx, ky, &u) }
        })
    }

    fn residual(&mut self) {
        let mesh = &self.mesh;
        let hp = self.hp;
        let profile = self.grid_profile(profiles::residual(self.n()));
        let space = ExecutionSpace::new(&self.ctx, self.pool());
        let width = mesh.width();
        let (u, u0, kx, ky) = (self.u.raw(), self.u0.raw(), self.kx.raw(), self.ky.raw());
        let r = Us::new(self.r.raw_mut());
        grid_for(hp, mesh, &space, &profile, &|k| {
            // SAFETY: cells disjoint.
            unsafe { common::cell_residual(width, k, u, u0, kx, ky, &r) };
        });
    }

    fn calc_2norm(&mut self, field: NormField) -> f64 {
        let mesh = &self.mesh;
        let hp = self.hp;
        let profile = self.grid_profile(profiles::norm(self.n()));
        let space = ExecutionSpace::new(&self.ctx, self.pool());
        let x = match field {
            NormField::U0 => self.u0.raw(),
            NormField::R => self.r.raw(),
        };
        grid_reduce(hp, mesh, &space, &profile, &|k| common::cell_norm(k, x))
    }

    fn finalise(&mut self) {
        let mesh = &self.mesh;
        let hp = self.hp;
        let profile = self.grid_profile(profiles::finalise(self.n()));
        let space = ExecutionSpace::new(&self.ctx, self.pool());
        let (u, density) = (self.u.raw(), self.density.raw());
        let energy = Us::new(self.energy.raw_mut());
        grid_for(hp, mesh, &space, &profile, &|k| {
            // SAFETY: cells disjoint.
            unsafe { common::cell_finalise(k, u, density, &energy) };
        });
    }

    fn field_summary(&mut self) -> Summary {
        // The multi-variable reduction that needed a custom reducer in the
        // paper's port (§3.3) — here via Kokkos' custom-reducer dispatch,
        // one component at a time would lose fusion, so use the array
        // reducer over rows.
        let mesh = &self.mesh;
        let profile = self.grid_profile(profiles::field_summary(self.n()));
        let space = ExecutionSpace::new(&self.ctx, self.pool());
        let (i0, i1) = (mesh.i0(), mesh.i1());
        let width = mesh.width();
        let cols = i1 - i0;
        let vol = mesh.cell_volume();
        let (density, energy, u) = (self.density.raw(), self.energy.raw(), self.u.raw());
        let acc = space.parallel_reduce_custom(
            &profile,
            RangePolicy::new(0, mesh.y_cells),
            &kokkos_rs::reducer::ArraySumReducer::<4>,
            &|jj| {
                let j = i0 + jj;
                let mut row = [0.0; 4];
                for ii in 0..cols {
                    let c = common::cell_summary(
                        common::idx(width, i0 + ii, j),
                        density,
                        energy,
                        u,
                        vol,
                    );
                    for q in 0..4 {
                        row[q] += c[q];
                    }
                }
                row
            },
        );
        Summary {
            volume: acc[0],
            mass: acc[1],
            internal_energy: acc[2],
            temperature: acc[3],
        }
    }

    fn read_u(&mut self) -> Vec<f64> {
        let mut h = View::host("h_u", self.mesh.len(), 1);
        deep_copy(&self.ctx, &mut h, &self.u);
        h.raw().to_vec()
    }

    fn inspect_field(&self, id: FieldId) -> Option<Vec<f64>> {
        Some(self.view_for(id).raw().to_vec())
    }

    fn poke_field(&mut self, id: FieldId, k: usize, value: f64) {
        self.view_for_mut(id).raw_mut()[k] = value;
    }
}

impl KokkosPort {
    /// Resolve a field id to its device view — conformance hooks only;
    /// aliases resolve as in the batched halo path.
    fn view_for(&self, id: FieldId) -> &View {
        match id {
            FieldId::Density => &self.density,
            FieldId::Energy0 | FieldId::Energy1 => &self.energy,
            FieldId::U => &self.u,
            FieldId::U0 => &self.u0,
            FieldId::P => &self.p,
            FieldId::R => &self.r,
            FieldId::W => &self.w,
            FieldId::Z | FieldId::Mi => &self.z,
            FieldId::Kx => &self.kx,
            FieldId::Ky => &self.ky,
            FieldId::Sd => &self.sd,
        }
    }

    fn view_for_mut(&mut self, id: FieldId) -> &mut View {
        match id {
            FieldId::Density => &mut self.density,
            FieldId::Energy0 | FieldId::Energy1 => &mut self.energy,
            FieldId::U => &mut self.u,
            FieldId::U0 => &mut self.u0,
            FieldId::P => &mut self.p,
            FieldId::R => &mut self.r,
            FieldId::W => &mut self.w,
            FieldId::Z | FieldId::Mi => &mut self.z,
            FieldId::Kx => &mut self.kx,
            FieldId::Ky => &mut self.ky,
            FieldId::Sd => &mut self.sd,
        }
    }

    fn cheby_step(&mut self, first: bool, theta: f64, alpha: f64, beta: f64) {
        let mesh = &self.mesh;
        let hp = self.hp;
        let (h, t) = profiles::fused_pair(
            crate::ir::FusionKind::ChebyStep,
            self.n(),
            false,
            self.lowering_caps(),
        );
        let p_p = self.grid_profile(h);
        let p_u = self.grid_profile(t);
        let pool = self.pool();
        let width = mesh.width();
        {
            let space = ExecutionSpace::new(&self.ctx, pool);
            let (u, u0, kx, ky) = (self.u.raw(), self.u0.raw(), self.kx.raw(), self.ky.raw());
            let w = Us::new(self.w.raw_mut());
            let r = Us::new(self.r.raw_mut());
            let p = Us::new(self.p.raw_mut());
            grid_for(hp, mesh, &space, &p_p, &|k| {
                // SAFETY: cells disjoint.
                unsafe {
                    common::cell_cheby_calc_p(
                        width, k, first, theta, alpha, beta, u, u0, kx, ky, &w, &r, &p,
                    )
                };
            });
        }
        let space = ExecutionSpace::new(&self.ctx, pool);
        let p = self.p.raw();
        let u = Us::new(self.u.raw_mut());
        grid_for(hp, mesh, &space, &p_u, &|k| {
            // SAFETY: cells disjoint.
            unsafe { common::cell_add_p_to_u(k, p, &u) };
        });
    }
}
