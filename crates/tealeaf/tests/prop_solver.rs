//! Property-based tests of the solver mathematics: operator SPD-ness,
//! solver convergence on random problems, eigenvalue machinery.

use proptest::prelude::*;

use parpool::UnsafeSlice;
use simdev::devices;
use tea_core::config::{Coefficient, SolverKind, TeaConfig};
use tea_core::halo::update_halo;
use tea_core::mesh::Mesh2d;
use tea_core::physics;
use tea_core::state::{Geometry, State};
use tealeaf::eigen::tqli;
use tealeaf::ports::common;
use tealeaf::{run_simulation, ModelId};

/// Build scaled face coefficients from a random positive density field.
fn coefficients(mesh: &Mesh2d, density: &[f64], rx: f64, ry: f64) -> (Vec<f64>, Vec<f64>) {
    let mut kx = vec![0.0; mesh.len()];
    let mut ky = vec![0.0; mesh.len()];
    {
        let (kxs, kys) = (UnsafeSlice::new(&mut kx), UnsafeSlice::new(&mut ky));
        for j in mesh.i0()..=mesh.j1() {
            // SAFETY: single-threaded.
            unsafe {
                common::row_init_coeffs(
                    mesh,
                    j,
                    Coefficient::Conductivity,
                    rx,
                    ry,
                    density,
                    &kxs,
                    &kys,
                )
            };
        }
    }
    (kx, ky)
}

/// `x · A x` over the interior with reflective-halo `x`.
fn x_ax(mesh: &Mesh2d, x: &[f64], kx: &[f64], ky: &[f64]) -> f64 {
    let mut x = x.to_vec();
    update_halo(mesh, &mut x, 1);
    let width = mesh.width();
    let mut acc = 0.0;
    for j in mesh.i0()..mesh.j1() {
        for i in mesh.i0()..mesh.i1() {
            let k = common::idx(width, i, j);
            acc += x[k] * common::apply_a(width, k, &x, kx, ky);
        }
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn operator_is_positive_definite(
        densities in proptest::collection::vec(0.05..100.0f64, 144),
        xs in proptest::collection::vec(-10.0..10.0f64, 144),
        rx in 0.01..2.0f64,
    ) {
        // 8×8 interior on a 12×12 padded mesh
        let mesh = Mesh2d::square(8);
        let mut density = vec![1.0; mesh.len()];
        density.copy_from_slice(&densities);
        update_halo(&mesh, &mut density, 2);
        let (kx, ky) = coefficients(&mesh, &density, rx, rx);
        let mut x = vec![0.0; mesh.len()];
        x.copy_from_slice(&xs);
        // zero the halo so only interior dofs enter the quadratic form
        let quad = x_ax(&mesh, &x, &kx, &ky);
        let norm: f64 = {
            let mut n = 0.0;
            for (i, j) in mesh.interior().collect::<Vec<_>>() {
                let v = x[mesh.idx(i, j)];
                n += v * v;
            }
            n
        };
        prop_assume!(norm > 1e-9);
        // with reflective halos A is an M-matrix with unit diagonal shift:
        // x·Ax ≥ ‖x‖² > 0
        prop_assert!(quad > 0.0, "x·Ax = {quad}");
        prop_assert!(quad >= 0.99 * norm, "x·Ax = {quad} < ‖x‖² = {norm}");
    }

    #[test]
    fn cg_solves_random_two_state_problems(
        bg_density in 0.5..50.0f64,
        bg_energy in 0.01..10.0f64,
        hot_density in 0.05..5.0f64,
        hot_energy in 1.0..50.0f64,
        seed_cells in 16usize..40,
    ) {
        let mut cfg = TeaConfig::paper_problem(seed_cells);
        cfg.states = vec![
            State::background(bg_density, bg_energy),
            State {
                density: hot_density,
                energy: hot_energy,
                geometry: Geometry::Rectangle { xmin: 1.0, xmax: 4.0, ymin: 2.0, ymax: 5.0 },
            },
        ];
        cfg.solver = SolverKind::ConjugateGradient;
        cfg.end_step = 1;
        cfg.tl_eps = 1.0e-10;
        cfg.tl_max_iters = 5_000;
        let report = run_simulation(ModelId::Serial, &devices::cpu_xeon_e5_2670_x2(), &cfg).unwrap();
        prop_assert!(report.converged, "CG must converge on any SPD problem");
        // conservation: the solve redistributes u but conserves its integral
        prop_assert!(report.summary.temperature > 0.0);
        prop_assert!(report.summary.mass > 0.0);
    }

    #[test]
    fn solvers_agree_on_random_problems(
        hot_energy in 1.0..40.0f64,
        cells in 16usize..32,
    ) {
        let mut cfg = TeaConfig::paper_problem(cells);
        cfg.states = vec![
            State::background(10.0, 0.01),
            State {
                density: 0.2,
                energy: hot_energy,
                geometry: Geometry::Circle { cx: 5.0, cy: 5.0, radius: 2.5 },
            },
        ];
        cfg.end_step = 1;
        cfg.tl_eps = 1.0e-13;
        cfg.tl_max_iters = 8_000;
        cfg.tl_ch_cg_presteps = 10;
        let device = devices::cpu_xeon_e5_2670_x2();
        let mut temps = Vec::new();
        for solver in [SolverKind::ConjugateGradient, SolverKind::Chebyshev, SolverKind::Ppcg] {
            cfg.solver = solver;
            let r = run_simulation(ModelId::Serial, &device, &cfg).unwrap();
            prop_assert!(r.converged, "{solver} diverged");
            temps.push(r.summary.temperature);
        }
        // all three iterative solvers reach the same solution within the
        // solve tolerance
        let spread = (temps[0] - temps[1]).abs().max((temps[0] - temps[2]).abs());
        prop_assert!(spread < 1e-6 * temps[0].abs().max(1.0), "solver spread {spread}");
    }

    #[test]
    fn tqli_recovers_diagonal(mut diag in proptest::collection::vec(-100.0..100.0f64, 1..12)) {
        let off = vec![0.0; diag.len()];
        let eig = tqli(&diag, &off).unwrap();
        diag.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (e, d) in eig.iter().zip(&diag) {
            prop_assert!((e - d).abs() < 1e-10 * d.abs().max(1.0));
        }
    }

    #[test]
    fn tqli_respects_gershgorin(
        diag in proptest::collection::vec(0.1..50.0f64, 2..12),
        offs in proptest::collection::vec(-5.0..5.0f64, 12),
    ) {
        let n = diag.len();
        let mut off = vec![0.0; n];
        off[1..n].copy_from_slice(&offs[1..n]);
        let eig = tqli(&diag, &off).unwrap();
        // Gershgorin: every eigenvalue lies within max row-sum bounds
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..n {
            let mut radius = 0.0;
            if i > 0 {
                radius += off[i].abs();
            }
            if i + 1 < n {
                radius += off[i + 1].abs();
            }
            lo = lo.min(diag[i] - radius);
            hi = hi.max(diag[i] + radius);
        }
        for e in eig {
            prop_assert!(e >= lo - 1e-9 && e <= hi + 1e-9, "{e} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn tqli_eigenvalue_sum_is_trace(
        diag in proptest::collection::vec(-20.0..20.0f64, 2..10),
        offs in proptest::collection::vec(-3.0..3.0f64, 10),
    ) {
        let n = diag.len();
        let mut off = vec![0.0; n];
        off[1..n].copy_from_slice(&offs[1..n]);
        let eig = tqli(&diag, &off).unwrap();
        let trace: f64 = diag.iter().sum();
        let sum: f64 = eig.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8 * trace.abs().max(1.0));
    }

    #[test]
    fn cheby_coefficients_bounded(
        lo in 0.01..1.0f64,
        ratio in 1.1..100.0f64,
        n in 1usize..200,
    ) {
        use tealeaf::cheby::{ChebyCoeffs, ChebyShift};
        let shift = ChebyShift::from_bounds(lo, lo * ratio);
        let pairs = ChebyCoeffs::take_pairs(shift, n);
        for (alpha, beta) in pairs {
            prop_assert!(alpha > 0.0 && alpha < 1.0, "α={alpha}");
            prop_assert!(beta > 0.0, "β={beta}");
        }
    }

    #[test]
    fn jacobi_diagonal_dominance_guarantees_contraction(
        densities in proptest::collection::vec(0.1..10.0f64, 64),
    ) {
        // jacobi_update's weights sum to < 1 ⇒ the sweep is a contraction
        let mesh = Mesh2d::square(4);
        let mut density = vec![1.0; mesh.len()];
        density[..64.min(mesh.len())].copy_from_slice(&densities[..64.min(mesh.len())]);
        update_halo(&mesh, &mut density, 2);
        let (kx, ky) = coefficients(&mesh, &density, 0.5, 0.5);
        let width = mesh.width();
        for (i, j) in mesh.interior().collect::<Vec<_>>() {
            let k = mesh.idx(i, j);
            let diag = physics::diagonal(kx[k], kx[k + 1], ky[k], ky[k + width]);
            let offsum = kx[k] + kx[k + 1] + ky[k] + ky[k + width];
            prop_assert!(offsum / diag < 1.0);
        }
    }
}
