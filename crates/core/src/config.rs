//! `tea.in`-style problem configuration.
//!
//! The reference TeaLeaf reads its problem description from a small
//! keyword file. This module reproduces that format closely enough that the
//! upstream benchmark decks (e.g. `tea_bm_5.in`) parse unchanged:
//!
//! ```text
//! *tea
//! state 1 density=100.0 energy=0.0001
//! state 2 density=0.1 energy=25.0 geometry=rectangle xmin=0.0 xmax=1.0 ymin=1.0 ymax=2.0
//! x_cells=4096
//! y_cells=4096
//! xmin=0.0
//! xmax=10.0
//! ymin=0.0
//! ymax=10.0
//! initial_timestep=0.004
//! end_step=10
//! tl_max_iters=10000
//! tl_use_cg
//! tl_eps=1.0e-15
//! *endtea
//! ```

use std::fmt;
use std::str::FromStr;

use crate::state::{Geometry, State};

/// How the conduction coefficient is derived from density (paper §1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coefficient {
    /// `w = density`
    Conductivity,
    /// `w = 1/density` (the TeaLeaf default)
    RecipConductivity,
}

/// Which of the iterative solvers drives the implicit solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolverKind {
    /// Pointwise Jacobi — the simple baseline solver in upstream TeaLeaf.
    Jacobi,
    /// Conjugate Gradient (paper's `CG`).
    ConjugateGradient,
    /// Chebyshev semi-iteration seeded by CG eigenvalue estimates.
    Chebyshev,
    /// Chebyshev Polynomially Preconditioned CG (paper's `PPCG`).
    Ppcg,
}

impl SolverKind {
    /// Short lower-case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            SolverKind::Jacobi => "jacobi",
            SolverKind::ConjugateGradient => "cg",
            SolverKind::Chebyshev => "chebyshev",
            SolverKind::Ppcg => "ppcg",
        }
    }

    /// The three solvers evaluated by the paper (§4): CG, Chebyshev, PPCG.
    pub const PAPER: [SolverKind; 3] = [
        SolverKind::ConjugateGradient,
        SolverKind::Chebyshev,
        SolverKind::Ppcg,
    ];
}

impl fmt::Display for SolverKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Parsed problem configuration with TeaLeaf-compatible defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct TeaConfig {
    pub x_cells: usize,
    pub y_cells: usize,
    pub xmin: f64,
    pub xmax: f64,
    pub ymin: f64,
    pub ymax: f64,
    pub initial_timestep: f64,
    pub end_step: usize,
    pub solver: SolverKind,
    pub tl_max_iters: usize,
    pub tl_eps: f64,
    /// Use the Jacobi (diagonal) preconditioner inside CG.
    pub tl_preconditioner: bool,
    /// CG iterations run before Chebyshev/PPCG to estimate eigenvalues.
    pub tl_ch_cg_presteps: usize,
    /// Inner Chebyshev smoothing steps per PPCG outer iteration.
    pub tl_ppcg_inner_steps: usize,
    pub coefficient: Coefficient,
    pub halo_depth: usize,
    /// 2-D tile decomposition for distributed runs: the mesh is split
    /// into `tl_tiles_x × tl_tiles_y` tiles, one per rank, in row-major
    /// rank order. Both zero (the default) means *auto*: a single tile
    /// column with one tile row per rank — the 1-D strip decomposition.
    pub tl_tiles_x: usize,
    pub tl_tiles_y: usize,
    pub states: Vec<State>,
    /// Enable the resilience layer (sentinels + checkpoint/rollback +
    /// fallback chains). On healthy runs the layer is numerically inert,
    /// so goldens are unchanged either way.
    pub tl_resilience: bool,
    /// Solver iterations between in-solve field checkpoints (0 disables
    /// mid-solve rollback; the solve-start checkpoint always exists).
    pub tl_checkpoint_interval: usize,
    /// Divergence sentinel: trip when `|rrn| > factor · |rro₀|`.
    pub tl_divergence_factor: f64,
    /// Stagnation sentinel: trip after this many residual observations
    /// without improving on the best residual seen so far.
    pub tl_stagnation_window: usize,
    /// Cap on recovery attempts (rollbacks or same-solver retries) per
    /// solve before degrading along the fallback chain.
    pub tl_max_recoveries: usize,
    /// Explicit fallback chain; empty means the built-in degradation
    /// (PPCG/Chebyshev → CG → Jacobi, CG → Jacobi).
    pub tl_fallback_chain: Vec<SolverKind>,
    /// Base seed for the deterministic chaos harness (fault injection in
    /// the distributed transport). The same deck + seed replays the same
    /// fault schedule bit-for-bit; 0 is an ordinary seed, not "off".
    pub tl_chaos_seed: u64,
    /// Per-receive recovery deadline (seconds) for the distributed
    /// transport: how long a rank starves on a channel — through NACKs,
    /// backoff and straggler flushes — before declaring the peer dead.
    pub tl_exchange_deadline: f64,
    /// Allow the resilient distributed driver to re-decompose onto a
    /// smaller tile grid when a rank stays dead past the
    /// `tl_max_recoveries` restart budget. Off means such a loss aborts.
    pub tl_elastic_regrid: bool,
    /// Enable the simulated power model. Off means every run reports
    /// exactly 0 J; energy never feeds back into kernel times, so the
    /// numerics and simulated seconds are bit-identical either way.
    pub tl_power_model: bool,
    /// Use the committed autotuned launch configurations (the tuning
    /// registry). The calibrated device profiles already describe the
    /// paper's hand-tuned codes, so the tuned configuration is the
    /// no-penalty baseline; turning this *off* charges the generic
    /// per-device default launch shape instead, slowing the data term of
    /// every kernel by the tuner-measured configuration-efficiency
    /// ratio. Numerics are bit-identical either way.
    pub tl_autotune: bool,
    /// Override the device's calibrated idle board power, watts.
    pub tl_idle_watts: Option<f64>,
    /// Override the device's calibrated active board power, watts.
    pub tl_active_watts: Option<f64>,
}

impl Default for TeaConfig {
    fn default() -> Self {
        TeaConfig {
            x_cells: 128,
            y_cells: 128,
            xmin: 0.0,
            xmax: 10.0,
            ymin: 0.0,
            ymax: 10.0,
            initial_timestep: 0.004,
            end_step: 10,
            solver: SolverKind::ConjugateGradient,
            tl_max_iters: 10_000,
            tl_eps: 1.0e-15,
            tl_preconditioner: false,
            tl_ch_cg_presteps: 30,
            tl_ppcg_inner_steps: 10,
            coefficient: Coefficient::Conductivity,
            halo_depth: 2,
            tl_tiles_x: 0,
            tl_tiles_y: 0,
            tl_resilience: true,
            tl_checkpoint_interval: 50,
            tl_divergence_factor: 1.0e12,
            tl_stagnation_window: 400,
            tl_max_recoveries: 3,
            tl_fallback_chain: Vec::new(),
            tl_chaos_seed: 0,
            tl_exchange_deadline: 0.25,
            tl_elastic_regrid: true,
            tl_power_model: true,
            tl_autotune: true,
            tl_idle_watts: None,
            tl_active_watts: None,
            states: vec![
                State::background(100.0, 0.0001),
                State {
                    density: 0.1,
                    energy: 25.0,
                    geometry: Geometry::Rectangle {
                        xmin: 0.0,
                        xmax: 1.0,
                        ymin: 1.0,
                        ymax: 2.0,
                    },
                },
                State {
                    density: 0.1,
                    energy: 0.1,
                    geometry: Geometry::Rectangle {
                        xmin: 1.0,
                        xmax: 6.0,
                        ymin: 1.0,
                        ymax: 2.0,
                    },
                },
            ],
        }
    }
}

impl TeaConfig {
    /// The paper's benchmark problem at an arbitrary square mesh size
    /// (§4 uses 4096×4096, the mesh-convergence point).
    pub fn paper_problem(cells: usize) -> Self {
        TeaConfig {
            x_cells: cells,
            y_cells: cells,
            ..TeaConfig::default()
        }
    }

    /// Build the [`crate::Mesh2d`] described by this configuration.
    pub fn mesh(&self) -> crate::mesh::Mesh2d {
        crate::mesh::Mesh2d::new(
            self.x_cells,
            self.y_cells,
            self.halo_depth,
            (self.xmin, self.xmax),
            (self.ymin, self.ymax),
        )
    }

    /// Parse a `tea.in`-format deck.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut cfg = TeaConfig {
            states: Vec::new(),
            ..TeaConfig::default()
        };
        let mut in_block = false;
        let mut saw_block_marker = false;
        for (ln, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            let lower = line.to_ascii_lowercase();
            match lower.as_str() {
                "*tea" => {
                    in_block = true;
                    saw_block_marker = true;
                    continue;
                }
                "*endtea" => {
                    in_block = false;
                    continue;
                }
                _ => {}
            }
            if saw_block_marker && !in_block {
                continue; // content outside the *tea block is ignored
            }
            parse_line(&mut cfg, &lower).map_err(|kind| ConfigError { line: ln + 1, kind })?;
        }
        if cfg.states.is_empty() {
            cfg.states = TeaConfig::default().states;
        }
        if !matches!(cfg.states[0].geometry, Geometry::Background) {
            return Err(ConfigError {
                line: 0,
                kind: ErrorKind::MissingBackgroundState,
            });
        }
        Ok(cfg)
    }

    /// Check the semantic invariants a deck can violate even when it
    /// parses: mesh extent, tolerance, iteration budget, timestep and
    /// domain must all be usable. Called by `Problem::from_config` so a
    /// bad deck fails with a typed error instead of panicking deep in
    /// mesh setup.
    pub fn validate(&self) -> Result<(), InvalidConfig> {
        // NaN-safe strict ordering: NaN on either side is a violation.
        fn strictly_less(lo: f64, hi: f64) -> bool {
            matches!(lo.partial_cmp(&hi), Some(core::cmp::Ordering::Less))
        }
        if self.x_cells == 0 || self.y_cells == 0 {
            return Err(InvalidConfig::EmptyMesh {
                x_cells: self.x_cells,
                y_cells: self.y_cells,
            });
        }
        if !strictly_less(0.0, self.tl_eps) || !self.tl_eps.is_finite() {
            return Err(InvalidConfig::NonPositiveEps(self.tl_eps));
        }
        if self.tl_max_iters == 0 {
            return Err(InvalidConfig::ZeroMaxIters);
        }
        if !strictly_less(0.0, self.initial_timestep) || !self.initial_timestep.is_finite() {
            return Err(InvalidConfig::NonPositiveTimestep(self.initial_timestep));
        }
        if !strictly_less(self.xmin, self.xmax) || !strictly_less(self.ymin, self.ymax) {
            return Err(InvalidConfig::EmptyDomain {
                x: (self.xmin, self.xmax),
                y: (self.ymin, self.ymax),
            });
        }
        if self.halo_depth == 0 {
            return Err(InvalidConfig::ZeroHaloDepth);
        }
        if !strictly_less(1.0, self.tl_divergence_factor) {
            return Err(InvalidConfig::BadDivergenceFactor(
                self.tl_divergence_factor,
            ));
        }
        if (self.tl_tiles_x == 0) != (self.tl_tiles_y == 0) {
            return Err(InvalidConfig::HalfSpecifiedTileGrid {
                tiles_x: self.tl_tiles_x,
                tiles_y: self.tl_tiles_y,
            });
        }
        if self.tl_tiles_x > 0
            && (self.x_cells / self.tl_tiles_x < self.halo_depth
                || self.y_cells / self.tl_tiles_y < self.halo_depth)
        {
            // Uneven tile spans use the floor split, so the smallest tile
            // holds floor(cells/tiles) cells on each axis; every tile
            // must still carry a full halo_depth of interior cells.
            return Err(InvalidConfig::TileGridTooFine {
                tiles_x: self.tl_tiles_x,
                tiles_y: self.tl_tiles_y,
                x_cells: self.x_cells,
                y_cells: self.y_cells,
                halo_depth: self.halo_depth,
            });
        }
        if !strictly_less(0.0, self.tl_exchange_deadline) || !self.tl_exchange_deadline.is_finite()
        {
            return Err(InvalidConfig::NonPositiveExchangeDeadline(
                self.tl_exchange_deadline,
            ));
        }
        for (key, watts) in [
            ("tl_idle_watts", self.tl_idle_watts),
            ("tl_active_watts", self.tl_active_watts),
        ] {
            if let Some(w) = watts {
                if !strictly_less(0.0, w) || !w.is_finite() {
                    return Err(InvalidConfig::NonPositiveWatts { key, watts: w });
                }
            }
        }
        if let (Some(idle), Some(active)) = (self.tl_idle_watts, self.tl_active_watts) {
            if !strictly_less(idle, active) && idle != active {
                return Err(InvalidConfig::IdleExceedsActiveWatts { idle, active });
            }
        }
        Ok(())
    }

    /// The tile grid a distributed run over `ranks` ranks should use.
    ///
    /// With the keys unset this is the auto strip decomposition
    /// `(1, ranks)`; when set, the product must equal the rank count —
    /// a mismatch is a deck error, reported as a typed
    /// [`InvalidConfig::TileGridRankMismatch`].
    pub fn tile_grid(&self, ranks: usize) -> Result<(usize, usize), InvalidConfig> {
        if self.tl_tiles_x == 0 && self.tl_tiles_y == 0 {
            return Ok((1, ranks));
        }
        if self.tl_tiles_x * self.tl_tiles_y != ranks {
            return Err(InvalidConfig::TileGridRankMismatch {
                tiles_x: self.tl_tiles_x,
                tiles_y: self.tl_tiles_y,
                ranks,
            });
        }
        Ok((self.tl_tiles_x, self.tl_tiles_y))
    }
}

/// A semantically unusable [`TeaConfig`] (parsed fine, cannot run).
#[derive(Debug, Clone, PartialEq)]
pub enum InvalidConfig {
    /// `x_cells`/`y_cells` of zero describe no mesh.
    EmptyMesh { x_cells: usize, y_cells: usize },
    /// `tl_eps` must be a positive finite tolerance.
    NonPositiveEps(f64),
    /// `tl_max_iters == 0` gives every solver an empty iteration budget.
    ZeroMaxIters,
    /// `initial_timestep` must be positive and finite.
    NonPositiveTimestep(f64),
    /// The physical domain must have positive extent on both axes.
    EmptyDomain { x: (f64, f64), y: (f64, f64) },
    /// Zero halo depth leaves the stencils nothing to read.
    ZeroHaloDepth,
    /// The divergence sentinel factor must exceed 1.
    BadDivergenceFactor(f64),
    /// `tl_tiles_x`/`tl_tiles_y` must be set together (or both left 0).
    HalfSpecifiedTileGrid { tiles_x: usize, tiles_y: usize },
    /// The smallest tile of the requested grid cannot carry the halo.
    TileGridTooFine {
        tiles_x: usize,
        tiles_y: usize,
        x_cells: usize,
        y_cells: usize,
        halo_depth: usize,
    },
    /// The tile-grid product must equal the distributed rank count.
    TileGridRankMismatch {
        tiles_x: usize,
        tiles_y: usize,
        ranks: usize,
    },
    /// `tl_exchange_deadline` must be a positive finite duration.
    NonPositiveExchangeDeadline(f64),
    /// Watt overrides must be positive and finite.
    NonPositiveWatts { key: &'static str, watts: f64 },
    /// When both watt overrides are set, idle must not exceed active
    /// (the dynamic power `active − idle` would go negative).
    IdleExceedsActiveWatts { idle: f64, active: f64 },
}

impl fmt::Display for InvalidConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidConfig::EmptyMesh { x_cells, y_cells } => {
                write!(f, "mesh is empty: x_cells={x_cells}, y_cells={y_cells}")
            }
            InvalidConfig::NonPositiveEps(eps) => {
                write!(f, "tl_eps must be positive and finite, got {eps}")
            }
            InvalidConfig::ZeroMaxIters => write!(f, "tl_max_iters must be at least 1"),
            InvalidConfig::NonPositiveTimestep(dt) => {
                write!(f, "initial_timestep must be positive and finite, got {dt}")
            }
            InvalidConfig::EmptyDomain { x, y } => write!(
                f,
                "domain has no area: x=({}, {}), y=({}, {})",
                x.0, x.1, y.0, y.1
            ),
            InvalidConfig::ZeroHaloDepth => write!(f, "halo_depth must be at least 1"),
            InvalidConfig::BadDivergenceFactor(v) => {
                write!(f, "tl_divergence_factor must exceed 1, got {v}")
            }
            InvalidConfig::HalfSpecifiedTileGrid { tiles_x, tiles_y } => write!(
                f,
                "tl_tiles_x and tl_tiles_y must be set together, got {tiles_x} and {tiles_y}"
            ),
            InvalidConfig::TileGridTooFine {
                tiles_x,
                tiles_y,
                x_cells,
                y_cells,
                halo_depth,
            } => write!(
                f,
                "tile grid {tiles_x}x{tiles_y} over a {x_cells}x{y_cells} mesh leaves a tile \
                 smaller than the depth-{halo_depth} halo"
            ),
            InvalidConfig::TileGridRankMismatch {
                tiles_x,
                tiles_y,
                ranks,
            } => write!(
                f,
                "tile grid {tiles_x}x{tiles_y} needs {} ranks, run has {ranks}",
                tiles_x * tiles_y
            ),
            InvalidConfig::NonPositiveExchangeDeadline(v) => {
                write!(
                    f,
                    "tl_exchange_deadline must be positive and finite, got {v}"
                )
            }
            InvalidConfig::NonPositiveWatts { key, watts } => {
                write!(f, "{key} must be positive and finite, got {watts}")
            }
            InvalidConfig::IdleExceedsActiveWatts { idle, active } => {
                write!(
                    f,
                    "tl_idle_watts ({idle}) must not exceed tl_active_watts ({active})"
                )
            }
        }
    }
}

impl std::error::Error for InvalidConfig {}

/// Parse a comma-separated solver list (`tl_fallback_chain=cg,jacobi`).
fn parse_solver_list(value: &str) -> Option<Vec<SolverKind>> {
    value
        .split(',')
        .map(|s| match s.trim() {
            "jacobi" => Some(SolverKind::Jacobi),
            "cg" => Some(SolverKind::ConjugateGradient),
            "chebyshev" | "cheby" => Some(SolverKind::Chebyshev),
            "ppcg" => Some(SolverKind::Ppcg),
            _ => None,
        })
        .collect()
}

/// Error from [`TeaConfig::parse`], carrying the 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigError {
    pub line: usize,
    pub kind: ErrorKind,
}

/// The specific parse failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ErrorKind {
    UnknownKeyword(String),
    BadValue { key: String, value: String },
    BadState(String),
    MissingBackgroundState,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ErrorKind::UnknownKeyword(k) => write!(f, "line {}: unknown keyword '{k}'", self.line),
            ErrorKind::BadValue { key, value } => {
                write!(f, "line {}: bad value '{value}' for '{key}'", self.line)
            }
            ErrorKind::BadState(m) => write!(f, "line {}: bad state: {m}", self.line),
            ErrorKind::MissingBackgroundState => {
                write!(f, "state 1 must be the background state (no geometry)")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

fn strip_comment(line: &str) -> &str {
    match line.find(['!', '#']) {
        Some(p) => &line[..p],
        None => line,
    }
}

fn parse_num<T: FromStr>(key: &str, value: &str) -> Result<T, ErrorKind> {
    value.parse::<T>().map_err(|_| ErrorKind::BadValue {
        key: key.to_string(),
        value: value.to_string(),
    })
}

fn parse_line(cfg: &mut TeaConfig, line: &str) -> Result<(), ErrorKind> {
    if let Some(rest) = line.strip_prefix("state ") {
        return parse_state(cfg, rest);
    }
    // bare switches
    match line {
        "tl_use_jacobi" => {
            cfg.solver = SolverKind::Jacobi;
            return Ok(());
        }
        "tl_use_cg" => {
            cfg.solver = SolverKind::ConjugateGradient;
            return Ok(());
        }
        "tl_use_chebyshev" => {
            cfg.solver = SolverKind::Chebyshev;
            return Ok(());
        }
        "tl_use_ppcg" => {
            cfg.solver = SolverKind::Ppcg;
            return Ok(());
        }
        "tl_preconditioner_on" => {
            cfg.tl_preconditioner = true;
            return Ok(());
        }
        "tl_resilience_on" => {
            cfg.tl_resilience = true;
            return Ok(());
        }
        "tl_resilience_off" => {
            cfg.tl_resilience = false;
            return Ok(());
        }
        "use_c_kernels" | "profiler_on" | "verbose_on" | "tl_check_result" => return Ok(()),
        _ => {}
    }
    let (key, value) = match line.split_once('=') {
        Some((k, v)) => (k.trim(), v.trim()),
        None => return Err(ErrorKind::UnknownKeyword(line.to_string())),
    };
    match key {
        "x_cells" => cfg.x_cells = parse_num(key, value)?,
        "y_cells" => cfg.y_cells = parse_num(key, value)?,
        "xmin" => cfg.xmin = parse_num(key, value)?,
        "xmax" => cfg.xmax = parse_num(key, value)?,
        "ymin" => cfg.ymin = parse_num(key, value)?,
        "ymax" => cfg.ymax = parse_num(key, value)?,
        "initial_timestep" => cfg.initial_timestep = parse_num(key, value)?,
        "end_step" => cfg.end_step = parse_num(key, value)?,
        "end_time" => {} // accepted for deck compatibility; stepping is by end_step
        "tl_max_iters" => cfg.tl_max_iters = parse_num(key, value)?,
        "tl_eps" => cfg.tl_eps = parse_num(key, value)?,
        "tl_ch_cg_presteps" => cfg.tl_ch_cg_presteps = parse_num(key, value)?,
        "tl_ppcg_inner_steps" => cfg.tl_ppcg_inner_steps = parse_num(key, value)?,
        "halo_depth" => cfg.halo_depth = parse_num(key, value)?,
        "tl_tiles_x" => cfg.tl_tiles_x = parse_num(key, value)?,
        "tl_tiles_y" => cfg.tl_tiles_y = parse_num(key, value)?,
        "tl_checkpoint_interval" => cfg.tl_checkpoint_interval = parse_num(key, value)?,
        "tl_divergence_factor" => cfg.tl_divergence_factor = parse_num(key, value)?,
        "tl_stagnation_window" => cfg.tl_stagnation_window = parse_num(key, value)?,
        "tl_max_recoveries" => cfg.tl_max_recoveries = parse_num(key, value)?,
        "tl_chaos_seed" => cfg.tl_chaos_seed = parse_num(key, value)?,
        "tl_exchange_deadline" => cfg.tl_exchange_deadline = parse_num(key, value)?,
        "tl_elastic_regrid" => {
            cfg.tl_elastic_regrid = match value {
                "on" | "true" | "1" => true,
                "off" | "false" | "0" => false,
                _ => {
                    return Err(ErrorKind::BadValue {
                        key: key.to_string(),
                        value: value.to_string(),
                    })
                }
            };
        }
        "tl_autotune" => {
            cfg.tl_autotune = match value {
                "on" | "true" | "1" => true,
                "off" | "false" | "0" => false,
                _ => {
                    return Err(ErrorKind::BadValue {
                        key: key.to_string(),
                        value: value.to_string(),
                    })
                }
            };
        }
        "tl_idle_watts" => cfg.tl_idle_watts = Some(parse_num(key, value)?),
        "tl_active_watts" => cfg.tl_active_watts = Some(parse_num(key, value)?),
        "tl_power_model" => {
            cfg.tl_power_model = match value {
                "on" | "true" | "1" => true,
                "off" | "false" | "0" => false,
                _ => {
                    return Err(ErrorKind::BadValue {
                        key: key.to_string(),
                        value: value.to_string(),
                    })
                }
            };
        }
        "tl_resilience" => {
            cfg.tl_resilience = match value {
                "on" | "true" | "1" => true,
                "off" | "false" | "0" => false,
                _ => {
                    return Err(ErrorKind::BadValue {
                        key: key.to_string(),
                        value: value.to_string(),
                    })
                }
            };
        }
        "tl_fallback_chain" => {
            cfg.tl_fallback_chain =
                parse_solver_list(value).ok_or_else(|| ErrorKind::BadValue {
                    key: key.to_string(),
                    value: value.to_string(),
                })?;
        }
        "tl_preconditioner_type" => {
            cfg.tl_preconditioner = matches!(value, "jac_diag" | "jacobi" | "on");
        }
        "tl_coefficient" | "coefficient" => {
            cfg.coefficient = match value {
                "density" | "conductivity" => Coefficient::Conductivity,
                "recip_density" | "recip_conductivity" => Coefficient::RecipConductivity,
                _ => {
                    return Err(ErrorKind::BadValue {
                        key: key.to_string(),
                        value: value.to_string(),
                    })
                }
            };
        }
        _ => return Err(ErrorKind::UnknownKeyword(key.to_string())),
    }
    Ok(())
}

fn parse_state(cfg: &mut TeaConfig, rest: &str) -> Result<(), ErrorKind> {
    let mut parts = rest.split_whitespace();
    let _index: usize = parts
        .next()
        .ok_or_else(|| ErrorKind::BadState("missing state number".into()))?
        .parse()
        .map_err(|_| ErrorKind::BadState("state number must be an integer".into()))?;

    let mut density = None;
    let mut energy = None;
    let mut geometry_kind: Option<String> = None;
    let (mut gxmin, mut gxmax, mut gymin, mut gymax) = (0.0, 0.0, 0.0, 0.0);
    let mut radius = 0.0;

    for tok in parts {
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| ErrorKind::BadState(format!("expected key=value, got '{tok}'")))?;
        match k {
            "density" => density = Some(parse_num::<f64>(k, v)?),
            "energy" => energy = Some(parse_num::<f64>(k, v)?),
            "geometry" => geometry_kind = Some(v.to_string()),
            "xmin" => gxmin = parse_num(k, v)?,
            "xmax" => gxmax = parse_num(k, v)?,
            "ymin" => gymin = parse_num(k, v)?,
            "ymax" => gymax = parse_num(k, v)?,
            "radius" => radius = parse_num(k, v)?,
            _ => return Err(ErrorKind::BadState(format!("unknown state key '{k}'"))),
        }
    }
    let density = density.ok_or_else(|| ErrorKind::BadState("state needs density".into()))?;
    let energy = energy.ok_or_else(|| ErrorKind::BadState("state needs energy".into()))?;
    let geometry = match geometry_kind.as_deref() {
        None => Geometry::Background,
        Some("rectangle") => Geometry::Rectangle {
            xmin: gxmin,
            xmax: gxmax,
            ymin: gymin,
            ymax: gymax,
        },
        Some("circle") | Some("circular") => Geometry::Circle {
            cx: gxmin,
            cy: gymin,
            radius,
        },
        Some("point") => Geometry::Point { x: gxmin, y: gymin },
        Some(other) => return Err(ErrorKind::BadState(format!("unknown geometry '{other}'"))),
    };
    cfg.states.push(State {
        density,
        energy,
        geometry,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const DECK: &str = r#"
*tea
! the benchmark deck
state 1 density=100.0 energy=0.0001
state 2 density=0.1 energy=25.0 geometry=rectangle xmin=0.0 xmax=1.0 ymin=1.0 ymax=2.0
x_cells=512
y_cells=256
xmin=0.0
xmax=10.0
ymin=0.0
ymax=5.0
initial_timestep=0.004
end_step=8
tl_max_iters=5000
tl_use_ppcg
tl_eps=1.0e-12
tl_ppcg_inner_steps=12
*endtea
"#;

    #[test]
    fn parses_full_deck() {
        let cfg = TeaConfig::parse(DECK).unwrap();
        assert_eq!(cfg.x_cells, 512);
        assert_eq!(cfg.y_cells, 256);
        assert_eq!(cfg.ymax, 5.0);
        assert_eq!(cfg.end_step, 8);
        assert_eq!(cfg.solver, SolverKind::Ppcg);
        assert_eq!(cfg.tl_eps, 1.0e-12);
        assert_eq!(cfg.tl_ppcg_inner_steps, 12);
        assert_eq!(cfg.states.len(), 2);
        assert_eq!(cfg.states[1].density, 0.1);
    }

    #[test]
    fn defaults_without_deck_content() {
        let cfg = TeaConfig::parse("*tea\n*endtea\n").unwrap();
        assert_eq!(
            cfg,
            TeaConfig {
                ..TeaConfig::default()
            }
        );
    }

    #[test]
    fn comments_stripped() {
        let cfg = TeaConfig::parse("x_cells=64 ! trailing comment\n# whole line\n").unwrap();
        assert_eq!(cfg.x_cells, 64);
    }

    #[test]
    fn unknown_keyword_reports_line() {
        let err = TeaConfig::parse("\nbogus_key=1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, ErrorKind::UnknownKeyword(_)));
    }

    #[test]
    fn bad_value_reported() {
        let err = TeaConfig::parse("x_cells=many\n").unwrap_err();
        assert!(matches!(err.kind, ErrorKind::BadValue { .. }));
    }

    #[test]
    fn solver_switches() {
        for (line, solver) in [
            ("tl_use_jacobi", SolverKind::Jacobi),
            ("tl_use_cg", SolverKind::ConjugateGradient),
            ("tl_use_chebyshev", SolverKind::Chebyshev),
            ("tl_use_ppcg", SolverKind::Ppcg),
        ] {
            assert_eq!(TeaConfig::parse(line).unwrap().solver, solver);
        }
    }

    #[test]
    fn circle_state() {
        let cfg =
            TeaConfig::parse("state 1 density=1.0 energy=1.0\nstate 2 density=2.0 energy=2.0 geometry=circle xmin=5.0 ymin=5.0 radius=1.5\n")
                .unwrap();
        assert_eq!(
            cfg.states[1].geometry,
            Geometry::Circle {
                cx: 5.0,
                cy: 5.0,
                radius: 1.5
            }
        );
    }

    #[test]
    fn coefficient_parsing() {
        let cfg = TeaConfig::parse("tl_coefficient=recip_density\n").unwrap();
        assert_eq!(cfg.coefficient, Coefficient::RecipConductivity);
    }

    #[test]
    fn state_missing_density_fails() {
        let err = TeaConfig::parse("state 1 energy=1.0\n").unwrap_err();
        assert!(matches!(err.kind, ErrorKind::BadState(_)));
    }

    #[test]
    fn mesh_construction() {
        let cfg = TeaConfig::parse(DECK).unwrap();
        let mesh = cfg.mesh();
        assert_eq!(mesh.x_cells, 512);
        assert_eq!(mesh.y_cells, 256);
        assert_eq!(mesh.halo_depth, 2);
    }

    // ---- edge cases ----

    #[test]
    fn keywords_are_case_insensitive() {
        let cfg = TeaConfig::parse("*TEA\nX_CELLS=32\nTL_USE_CHEBYSHEV\n*ENDTEA\n").unwrap();
        assert_eq!(cfg.x_cells, 32);
        assert_eq!(cfg.solver, SolverKind::Chebyshev);
    }

    #[test]
    fn whitespace_around_equals_is_accepted() {
        let cfg = TeaConfig::parse("x_cells = 48\n  tl_eps =  1.0e-9  \n").unwrap();
        assert_eq!(cfg.x_cells, 48);
        assert_eq!(cfg.tl_eps, 1.0e-9);
    }

    #[test]
    fn content_outside_tea_block_is_ignored() {
        // Upstream decks carry unrelated sections after *endtea; none of
        // it may leak into (or fail) the parse.
        let cfg = TeaConfig::parse(
            "*tea\nx_cells=40\n*endtea\nsome_other_section=1\nutter nonsense here\n",
        )
        .unwrap();
        assert_eq!(cfg.x_cells, 40);
    }

    #[test]
    fn unspecified_keys_keep_tealeaf_defaults() {
        // A deck that only sets the mesh must leave every solver control
        // at the upstream default.
        let cfg = TeaConfig::parse("*tea\nx_cells=64\ny_cells=64\n*endtea\n").unwrap();
        let default = TeaConfig::default();
        assert_eq!(cfg.tl_eps, default.tl_eps);
        assert_eq!(cfg.tl_max_iters, default.tl_max_iters);
        assert_eq!(cfg.solver, default.solver);
        assert_eq!(cfg.tl_ch_cg_presteps, default.tl_ch_cg_presteps);
        assert_eq!(cfg.coefficient, default.coefficient);
        assert_eq!(cfg.states, default.states);
    }

    #[test]
    fn compatibility_keys_are_accepted_and_ignored() {
        let cfg = TeaConfig::parse(
            "end_time=10.0\nuse_c_kernels\nprofiler_on\nverbose_on\ntl_check_result\n",
        )
        .unwrap();
        assert_eq!(cfg, TeaConfig::default());
    }

    #[test]
    fn preconditioner_type_values() {
        for (value, on) in [("jac_diag", true), ("jacobi", true), ("none", false)] {
            let cfg = TeaConfig::parse(&format!("tl_preconditioner_type={value}\n")).unwrap();
            assert_eq!(cfg.tl_preconditioner, on, "{value}");
        }
        assert!(
            TeaConfig::parse("tl_preconditioner_on\n")
                .unwrap()
                .tl_preconditioner
        );
    }

    #[test]
    fn first_state_must_be_background() {
        let err = TeaConfig::parse(
            "state 1 density=1.0 energy=1.0 geometry=rectangle xmin=0.0 xmax=1.0 ymin=0.0 ymax=1.0\n",
        )
        .unwrap_err();
        assert!(matches!(err.kind, ErrorKind::MissingBackgroundState));
    }

    #[test]
    fn unknown_geometry_rejected_with_line() {
        let err = TeaConfig::parse(
            "state 1 density=1.0 energy=1.0\nstate 2 density=1.0 energy=1.0 geometry=hexagon\n",
        )
        .unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, ErrorKind::BadState(_)));
    }

    #[test]
    fn state_number_must_be_an_integer() {
        let err = TeaConfig::parse("state one density=1.0 energy=1.0\n").unwrap_err();
        assert!(matches!(err.kind, ErrorKind::BadState(_)));
    }

    #[test]
    fn point_geometry_parses() {
        let cfg = TeaConfig::parse(
            "state 1 density=1.0 energy=1.0\nstate 2 density=2.0 energy=3.0 geometry=point xmin=4.5 ymin=7.25\n",
        )
        .unwrap();
        assert_eq!(cfg.states[1].geometry, Geometry::Point { x: 4.5, y: 7.25 });
    }

    #[test]
    fn hash_comments_strip_mid_line() {
        let cfg = TeaConfig::parse("y_cells=96 # the mesh\ntl_use_jacobi # solver\n").unwrap();
        assert_eq!(cfg.y_cells, 96);
        assert_eq!(cfg.solver, SolverKind::Jacobi);
    }

    #[test]
    fn paper_scale_deck_overrides_every_default() {
        // The §4 mesh-convergence deck: 4096² at eps 1e-15 over 10 steps.
        let cfg = TeaConfig::parse(
            "*tea\nstate 1 density=100.0 energy=0.0001\n\
             state 2 density=0.1 energy=25.0 geometry=rectangle xmin=0.0 xmax=1.0 ymin=1.0 ymax=2.0\n\
             x_cells=4096\ny_cells=4096\nend_step=10\ntl_max_iters=10000\n\
             tl_use_cg\ntl_eps=1.0e-15\n*endtea\n",
        )
        .unwrap();
        assert_eq!((cfg.x_cells, cfg.y_cells), (4096, 4096));
        assert_eq!(cfg.end_step, 10);
        assert_eq!(cfg.tl_eps, 1.0e-15);
        assert_eq!(cfg.solver, SolverKind::ConjugateGradient);
        assert_eq!(cfg.states.len(), 2);
    }

    #[test]
    fn resilience_keys_parse() {
        let cfg = TeaConfig::parse(
            "tl_checkpoint_interval=25\ntl_divergence_factor=1.0e9\n\
             tl_stagnation_window=120\ntl_max_recoveries=5\n\
             tl_fallback_chain=cg,jacobi\ntl_resilience=off\n",
        )
        .unwrap();
        assert_eq!(cfg.tl_checkpoint_interval, 25);
        assert_eq!(cfg.tl_divergence_factor, 1.0e9);
        assert_eq!(cfg.tl_stagnation_window, 120);
        assert_eq!(cfg.tl_max_recoveries, 5);
        assert_eq!(
            cfg.tl_fallback_chain,
            vec![SolverKind::ConjugateGradient, SolverKind::Jacobi]
        );
        assert!(!cfg.tl_resilience);
        assert!(
            !TeaConfig::parse("tl_resilience_off\n")
                .unwrap()
                .tl_resilience
        );
        assert!(
            TeaConfig::parse("tl_resilience_on\n")
                .unwrap()
                .tl_resilience
        );
        assert!(TeaConfig::parse("tl_fallback_chain=warp_drive\n").is_err());
        assert!(TeaConfig::parse("tl_resilience=maybe\n").is_err());
    }

    #[test]
    fn chaos_keys_parse_validate_and_reject_junk() {
        let cfg = TeaConfig::parse(
            "tl_chaos_seed=18446744073709551615\ntl_exchange_deadline=0.05\n\
             tl_elastic_regrid=off\n",
        )
        .unwrap();
        assert_eq!(cfg.tl_chaos_seed, u64::MAX);
        assert_eq!(cfg.tl_exchange_deadline, 0.05);
        assert!(!cfg.tl_elastic_regrid);
        assert!(cfg.validate().is_ok());

        // defaults: seed 0, a quarter-second deadline, regrid allowed
        let d = TeaConfig::default();
        assert_eq!(d.tl_chaos_seed, 0);
        assert_eq!(d.tl_exchange_deadline, 0.25);
        assert!(d.tl_elastic_regrid);

        // every truthy/falsy spelling of the regrid switch
        for (value, want) in [("on", true), ("true", true), ("1", true)] {
            let cfg = TeaConfig::parse(&format!("tl_elastic_regrid={value}\n")).unwrap();
            assert_eq!(cfg.tl_elastic_regrid, want);
        }
        for value in ["false", "0"] {
            let cfg = TeaConfig::parse(&format!("tl_elastic_regrid={value}\n")).unwrap();
            assert!(!cfg.tl_elastic_regrid);
        }

        // parser edge cases: junk values are typed BadValue errors
        for deck in [
            "tl_chaos_seed=-1\n",
            "tl_chaos_seed=0x2a\n",
            "tl_chaos_seed=\n",
            "tl_exchange_deadline=soon\n",
            "tl_elastic_regrid=maybe\n",
            "tl_elastic_regrid=\n",
        ] {
            let err = TeaConfig::parse(deck).expect_err(deck);
            assert!(
                matches!(err.kind, ErrorKind::BadValue { .. }),
                "{deck} must be a typed BadValue, got {err:?}"
            );
        }

        // validation: the deadline must be a positive finite duration
        for bad in [0.0, -0.1, f64::NAN, f64::INFINITY] {
            let cfg = TeaConfig {
                tl_exchange_deadline: bad,
                ..TeaConfig::default()
            };
            assert!(
                matches!(
                    cfg.validate(),
                    Err(InvalidConfig::NonPositiveExchangeDeadline(_))
                ),
                "deadline {bad} must be rejected"
            );
        }
        // the parser accepts a negative deadline; validate() is the gate
        let parsed = TeaConfig::parse("tl_exchange_deadline=-2.0\n").unwrap();
        assert!(matches!(
            parsed.validate(),
            Err(InvalidConfig::NonPositiveExchangeDeadline(_))
        ));
    }

    #[test]
    fn validate_accepts_defaults_and_rejects_degenerate_configs() {
        fn with(mutate: impl FnOnce(&mut TeaConfig)) -> TeaConfig {
            let mut cfg = TeaConfig::default();
            mutate(&mut cfg);
            cfg
        }

        assert_eq!(TeaConfig::default().validate(), Ok(()));

        assert!(matches!(
            with(|c| c.x_cells = 0).validate(),
            Err(InvalidConfig::EmptyMesh { x_cells: 0, .. })
        ));

        for bad_eps in [0.0, -1.0e-10, f64::NAN] {
            assert!(matches!(
                with(|c| c.tl_eps = bad_eps).validate(),
                Err(InvalidConfig::NonPositiveEps(_))
            ));
        }

        assert_eq!(
            with(|c| c.tl_max_iters = 0).validate(),
            Err(InvalidConfig::ZeroMaxIters)
        );

        assert!(matches!(
            with(|c| c.initial_timestep = -0.5).validate(),
            Err(InvalidConfig::NonPositiveTimestep(_))
        ));

        assert!(matches!(
            with(|c| c.xmax = c.xmin).validate(),
            Err(InvalidConfig::EmptyDomain { .. })
        ));

        assert_eq!(
            with(|c| c.halo_depth = 0).validate(),
            Err(InvalidConfig::ZeroHaloDepth)
        );

        assert!(matches!(
            with(|c| c.tl_divergence_factor = 1.0).validate(),
            Err(InvalidConfig::BadDivergenceFactor(_))
        ));

        // every variant renders a message
        for err in [
            InvalidConfig::EmptyMesh {
                x_cells: 0,
                y_cells: 4,
            },
            InvalidConfig::NonPositiveEps(-1.0),
            InvalidConfig::ZeroMaxIters,
            InvalidConfig::NonPositiveTimestep(0.0),
            InvalidConfig::EmptyDomain {
                x: (0.0, 0.0),
                y: (0.0, 1.0),
            },
            InvalidConfig::ZeroHaloDepth,
            InvalidConfig::BadDivergenceFactor(0.5),
            InvalidConfig::HalfSpecifiedTileGrid {
                tiles_x: 2,
                tiles_y: 0,
            },
            InvalidConfig::TileGridTooFine {
                tiles_x: 64,
                tiles_y: 1,
                x_cells: 128,
                y_cells: 128,
                halo_depth: 2,
            },
            InvalidConfig::TileGridRankMismatch {
                tiles_x: 2,
                tiles_y: 2,
                ranks: 3,
            },
            InvalidConfig::NonPositiveExchangeDeadline(0.0),
            InvalidConfig::NonPositiveWatts {
                key: "tl_idle_watts",
                watts: -5.0,
            },
            InvalidConfig::IdleExceedsActiveWatts {
                idle: 300.0,
                active: 200.0,
            },
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn power_keys_parse_validate_and_reject_junk() {
        let cfg =
            TeaConfig::parse("tl_power_model=off\ntl_idle_watts=42.5\ntl_active_watts=180.0\n")
                .unwrap();
        assert!(!cfg.tl_power_model);
        assert_eq!(cfg.tl_idle_watts, Some(42.5));
        assert_eq!(cfg.tl_active_watts, Some(180.0));
        assert!(cfg.validate().is_ok());

        // defaults: power model on, no watt overrides
        let d = TeaConfig::default();
        assert!(d.tl_power_model);
        assert_eq!(d.tl_idle_watts, None);
        assert_eq!(d.tl_active_watts, None);

        // every truthy/falsy spelling of the switch
        for (value, want) in [
            ("on", true),
            ("true", true),
            ("1", true),
            ("off", false),
            ("false", false),
            ("0", false),
        ] {
            let cfg = TeaConfig::parse(&format!("tl_power_model={value}\n")).unwrap();
            assert_eq!(cfg.tl_power_model, want, "{value}");
        }

        // parser edge cases: junk values are typed BadValue errors
        for deck in [
            "tl_power_model=maybe\n",
            "tl_power_model=\n",
            "tl_idle_watts=warm\n",
            "tl_idle_watts=\n",
            "tl_active_watts=12W\n",
        ] {
            let err = TeaConfig::parse(deck).expect_err(deck);
            assert!(
                matches!(err.kind, ErrorKind::BadValue { .. }),
                "{deck} must be a typed BadValue, got {err:?}"
            );
        }

        // validation: watt overrides must be positive and finite…
        for bad in [0.0, -70.0, f64::NAN, f64::INFINITY] {
            let cfg = TeaConfig {
                tl_idle_watts: Some(bad),
                ..TeaConfig::default()
            };
            assert!(
                matches!(cfg.validate(), Err(InvalidConfig::NonPositiveWatts { .. })),
                "idle watts {bad} must be rejected"
            );
            let cfg = TeaConfig {
                tl_active_watts: Some(bad),
                ..TeaConfig::default()
            };
            assert!(
                matches!(cfg.validate(), Err(InvalidConfig::NonPositiveWatts { .. })),
                "active watts {bad} must be rejected"
            );
        }
        // …and idle must not exceed active when both are set
        let inverted = TeaConfig {
            tl_idle_watts: Some(250.0),
            tl_active_watts: Some(100.0),
            ..TeaConfig::default()
        };
        assert!(matches!(
            inverted.validate(),
            Err(InvalidConfig::IdleExceedsActiveWatts { .. })
        ));
        // equal idle and active (a constant-power board) is allowed
        let flat = TeaConfig {
            tl_idle_watts: Some(150.0),
            tl_active_watts: Some(150.0),
            ..TeaConfig::default()
        };
        assert!(flat.validate().is_ok());

        // the parser accepts a negative override; validate() is the gate
        let parsed = TeaConfig::parse("tl_active_watts=-1.0\n").unwrap();
        assert!(matches!(
            parsed.validate(),
            Err(InvalidConfig::NonPositiveWatts { .. })
        ));
    }

    #[test]
    fn tile_grid_keys_parse_validate_and_resolve() {
        fn with(mutate: impl FnOnce(&mut TeaConfig)) -> TeaConfig {
            let mut cfg = TeaConfig::default();
            mutate(&mut cfg);
            cfg
        }

        // parsing
        let cfg = TeaConfig::parse("tl_tiles_x=4\ntl_tiles_y=2\n").unwrap();
        assert_eq!((cfg.tl_tiles_x, cfg.tl_tiles_y), (4, 2));
        assert!(TeaConfig::parse("tl_tiles_x=two\n").is_err());
        assert!(TeaConfig::parse("tl_tiles_x=-1\n").is_err());
        assert!(TeaConfig::parse("tl_tiles_x=\n").is_err());

        // unset keys validate and resolve to the auto strip decomposition
        let auto = TeaConfig::default();
        assert_eq!(auto.validate(), Ok(()));
        assert_eq!(auto.tile_grid(1), Ok((1, 1)));
        assert_eq!(auto.tile_grid(5), Ok((1, 5)));

        // half-set grids are a deck error
        assert_eq!(
            with(|c| c.tl_tiles_x = 2).validate(),
            Err(InvalidConfig::HalfSpecifiedTileGrid {
                tiles_x: 2,
                tiles_y: 0,
            })
        );
        assert_eq!(
            with(|c| c.tl_tiles_y = 3).validate(),
            Err(InvalidConfig::HalfSpecifiedTileGrid {
                tiles_x: 0,
                tiles_y: 3,
            })
        );

        // the smallest tile must still carry the halo: 128 cells over 65
        // tiles leaves floor(128/65) = 1 < halo_depth 2 …
        assert!(matches!(
            with(|c| {
                c.tl_tiles_x = 65;
                c.tl_tiles_y = 1;
            })
            .validate(),
            Err(InvalidConfig::TileGridTooFine { .. })
        ));
        // … and 64 tiles (2-cell spans) is the edge that still fits.
        assert_eq!(
            with(|c| {
                c.tl_tiles_x = 64;
                c.tl_tiles_y = 1;
            })
            .validate(),
            Ok(())
        );

        // explicit grids must match the rank count exactly
        let grid = with(|c| {
            c.tl_tiles_x = 2;
            c.tl_tiles_y = 2;
        });
        assert_eq!(grid.validate(), Ok(()));
        assert_eq!(grid.tile_grid(4), Ok((2, 2)));
        assert_eq!(
            grid.tile_grid(3),
            Err(InvalidConfig::TileGridRankMismatch {
                tiles_x: 2,
                tiles_y: 2,
                ranks: 3,
            })
        );
    }

    #[test]
    fn empty_deck_is_the_default_problem() {
        let cfg = TeaConfig::parse("").unwrap();
        assert_eq!(cfg, TeaConfig::default());
        let cfg = TeaConfig::parse("\n\n   \n! only comments\n").unwrap();
        assert_eq!(cfg, TeaConfig::default());
    }
}
