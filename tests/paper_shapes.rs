//! Paper-shape assertions: the qualitative results of the paper's
//! evaluation (§4–§6) must hold in the reproduction — who wins, by
//! roughly what factor, and where the anomalies sit. Tolerances are
//! generous (the substrate is a simulator, not the authors' testbed);
//! what is asserted is the *shape*.
//!
//! Runs at a reduced functional scale with the convergence-regime device
//! scaling the benchmark harness uses (see `tea-bench`).

use simdev::devices;
use tea_bench::{figure_models, runtime_figure, Scale};
use tea_core::config::SolverKind;
use tealeaf::{run_simulation_seeded, ModelId};

fn scale() -> Scale {
    Scale {
        cells: 192,
        steps: 1,
        eps: 1.0e-12,
        sweep_max: 250,
        seed: tealeaf::driver::TEA_DEFAULT_SEED,
    }
}

/// sim seconds per solver for `model` in a completed figure run.
fn times(figure: &[(ModelId, Vec<tealeaf::RunReport>)], model: ModelId) -> [f64; 3] {
    let (_, reports) = figure
        .iter()
        .find(|(m, _)| *m == model)
        .unwrap_or_else(|| panic!("{model:?} missing from figure"));
    [
        reports[0].sim_seconds(),
        reports[1].sim_seconds(),
        reports[2].sim_seconds(),
    ]
}

fn ratios(
    figure: &[(ModelId, Vec<tealeaf::RunReport>)],
    model: ModelId,
    baseline: ModelId,
) -> [f64; 3] {
    let m = times(figure, model);
    let b = times(figure, baseline);
    [m[0] / b[0], m[1] / b[1], m[2] / b[2]]
}

#[test]
fn figure8_cpu_shape() {
    let fig = runtime_figure(&devices::cpu_xeon_e5_2670_x2(), scale());

    // §4.1: "The pure OpenMP implementations are the fastest options."
    let f90 = times(&fig, ModelId::Omp3F90);
    for (model, _) in &fig {
        if *model == ModelId::Omp3F90 {
            continue;
        }
        let t = times(&fig, *model);
        for s in 0..3 {
            assert!(
                t[s] >= f90[s] * 0.99,
                "{model:?} solver {s} beat the tuned baseline: {} vs {}",
                t[s],
                f90[s]
            );
        }
    }

    // §4.1: C++ flavour ≈ F90 except ~15 % slower Chebyshev.
    let [cg, cheby, ppcg] = ratios(&fig, ModelId::Omp3Cpp, ModelId::Omp3F90);
    assert!((cg - 1.0).abs() < 0.05, "C++ CG ratio {cg}");
    assert!((ppcg - 1.0).abs() < 0.05, "C++ PPCG ratio {ppcg}");
    assert!(
        cheby > 1.05 && cheby < 1.25,
        "C++ Chebyshev ratio {cheby} (paper ≈ 1.15)"
    );

    // §4.1: Kokkos within ~10 % of the C++ implementation.
    let k = ratios(&fig, ModelId::Kokkos, ModelId::Omp3Cpp);
    for (s, r) in k.iter().enumerate() {
        assert!(*r < 1.15, "Kokkos solver {s} ratio {r} (paper ≤ ~1.10)");
    }

    // §4.1: RAJA ≈ +20 % CG/PPCG but ~+40 % Chebyshev; the SIMD variant
    // brings Chebyshev back in line.
    let [r_cg, r_cheby, r_ppcg] = ratios(&fig, ModelId::Raja, ModelId::Omp3F90);
    assert!(
        r_cg > 1.1 && r_cg < 1.45,
        "RAJA CG ratio {r_cg} (paper ≈ 1.2)"
    );
    assert!(
        r_ppcg > 1.1 && r_ppcg < 1.45,
        "RAJA PPCG ratio {r_ppcg} (paper ≈ 1.2)"
    );
    assert!(
        r_cheby > 1.25 && r_cheby < 1.6,
        "RAJA Chebyshev ratio {r_cheby} (paper ≈ 1.4)"
    );
    assert!(r_cheby > r_cg, "Chebyshev must be RAJA's worst solver");
    let [_, simd_cheby, _] = ratios(&fig, ModelId::RajaSimd, ModelId::Omp3F90);
    assert!(
        simd_cheby < r_cheby - 0.15,
        "RAJA SIMD must recover ≈20 pp on Chebyshev ({simd_cheby} vs {r_cheby})"
    );

    // §4: "at most a 20% performance penalty is likely to be observed by
    // choosing any of the performance portable options" — excepting the
    // noted RAJA/OpenCL issues.
    let kk = ratios(&fig, ModelId::Kokkos, ModelId::Omp3F90);
    assert!(
        kk.iter().all(|r| *r < 1.25),
        "Kokkos CPU within ~20 %: {kk:?}"
    );
}

#[test]
fn figure8_opencl_cpu_variance() {
    // §4.1: 15 runs ranged 1631 s – 2813 s (≈ 1.7×). Different seeds must
    // reproduce a comparable run-level spread on the CPU — and none on
    // the GPU.
    let cfg = scale().config(SolverKind::ConjugateGradient);
    let cpu = scale().regime_device(&devices::cpu_xeon_e5_2670_x2());
    let runs: Vec<f64> = (0..15)
        .map(|seed| {
            run_simulation_seeded(ModelId::OpenCl, &cpu, &cfg, seed)
                .unwrap()
                .sim_seconds()
        })
        .collect();
    let (min, max) = runs.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &t| {
        (lo.min(t), hi.max(t))
    });
    let spread = max / min;
    assert!(
        spread > 1.3 && spread < 1.85,
        "OpenCL CPU spread {spread} (paper ≈ 2813/1631 = 1.72)"
    );

    let gpu = scale().regime_device(&devices::gpu_k20x());
    let g: Vec<f64> = (0..5)
        .map(|seed| {
            run_simulation_seeded(ModelId::OpenCl, &gpu, &cfg, seed)
                .unwrap()
                .sim_seconds()
        })
        .collect();
    let gpu_spread =
        g.iter().cloned().fold(0.0f64, f64::max) / g.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        gpu_spread < 1.001,
        "GPU runs are hardware-scheduled: spread {gpu_spread}"
    );
}

#[test]
fn figure9_gpu_shape() {
    let fig = runtime_figure(&devices::gpu_k20x(), scale());

    // §4.2: "both CUDA and OpenCL perform almost identically, and achieve
    // better results than the other models."
    let cl = ratios(&fig, ModelId::OpenCl, ModelId::Cuda);
    for (s, r) in cl.iter().enumerate() {
        assert!((r - 1.0).abs() < 0.08, "OpenCL/CUDA solver {s} ratio {r}");
    }
    let cuda = times(&fig, ModelId::Cuda);
    for (model, _) in &fig {
        if matches!(model, ModelId::Cuda | ModelId::OpenCl) {
            continue;
        }
        let t = times(&fig, *model);
        for s in 0..3 {
            assert!(t[s] > cuda[s], "{model:?} cannot beat CUDA (solver {s})");
        }
    }

    // §4.2: OpenACC ≈ +30 % CG, ≈ +10 % for the other two solvers.
    let [acc_cg, acc_cheby, acc_ppcg] = ratios(&fig, ModelId::OpenAcc, ModelId::Cuda);
    assert!(
        acc_cg > 1.15 && acc_cg < 1.5,
        "OpenACC CG ratio {acc_cg} (paper ≈ 1.3)"
    );
    assert!(
        acc_cheby < 1.25 && acc_ppcg < 1.3,
        "OpenACC others ≈ +10-20 %: {acc_cheby} {acc_ppcg}"
    );
    assert!(acc_cg > acc_cheby, "OpenACC's CG must be its worst solver");

    // §4.2: Kokkos — "unexplained performance problem" on CG (~+50 %),
    // Chebyshev/PPCG close to CUDA. At the reduced functional scale the
    // 30 CG eigenvalue presteps are a large fraction of the Chebyshev and
    // (especially) PPCG solves, bleeding the CG quirk into those columns
    // — at the paper's 4096² they are <2 % — so the caps here are looser
    // and the *differential* (the anomaly is CG-specific) is the binding
    // assertion.
    let [k_cg, k_cheby, k_ppcg] = ratios(&fig, ModelId::Kokkos, ModelId::Cuda);
    assert!(
        k_cg > 1.35 && k_cg < 1.65,
        "Kokkos GPU CG ratio {k_cg} (paper ≈ 1.5)"
    );
    assert!(
        k_cheby < 1.35 && k_ppcg < 1.40,
        "Kokkos GPU others: {k_cheby} {k_ppcg}"
    );
    assert!(
        k_cg > k_cheby + 0.15 && k_cg > k_ppcg + 0.1,
        "the Kokkos GPU problem must be CG-specific: cg {k_cg}, cheby {k_cheby}, ppcg {k_ppcg}"
    );

    // §4.2: Kokkos HP improves CG ~10 % but costs >20 % on Chebyshev/PPCG.
    // The cost side is checked at a larger mesh where the Chebyshev/PPCG
    // phases dominate the shared CG presteps (see the bleed note above).
    let [hp_cg, _, _] = ratios(&fig, ModelId::KokkosHP, ModelId::Kokkos);
    assert!(
        hp_cg < 0.97,
        "HP must improve the CG solver (ratio {hp_cg})"
    );
    let big = Scale {
        cells: 384,
        ..scale()
    };
    let mut cheby_cfg = big.config(SolverKind::Chebyshev);
    cheby_cfg.tl_eps = 1.0e-10;
    let regime = big.regime_device(&devices::gpu_k20x());
    let flat = run_simulation_seeded(ModelId::Kokkos, &regime, &cheby_cfg, 0).unwrap();
    let hp = run_simulation_seeded(ModelId::KokkosHP, &regime, &cheby_cfg, 0).unwrap();
    let hp_cheby = hp.sim_seconds() / flat.sim_seconds();
    assert!(
        hp_cheby > 1.05,
        "HP must cost on the Chebyshev solver once presteps are amortised: {hp_cheby}"
    );
}

#[test]
fn figure10_knc_shape() {
    let fig = runtime_figure(&devices::knc_xeon_phi(), scale());

    // §4.3: the native Fortran OpenMP build is the best for all solvers.
    let f90 = times(&fig, ModelId::Omp3F90);
    for (model, _) in &fig {
        if *model == ModelId::Omp3F90 {
            continue;
        }
        let t = times(&fig, *model);
        for s in 0..3 {
            assert!(
                t[s] > f90[s],
                "{model:?} cannot beat native F90 on KNC (solver {s})"
            );
        }
    }

    // §4.3: OpenMP 4.0 ≈ +45 % CG, within ~10-20 % for Chebyshev/PPCG.
    let [o4_cg, o4_cheby, o4_ppcg] = ratios(&fig, ModelId::Omp4, ModelId::Omp3F90);
    assert!(
        o4_cg > 1.3 && o4_cg < 1.6,
        "OpenMP 4.0 KNC CG ratio {o4_cg} (paper ≈ 1.45)"
    );
    assert!(
        o4_cheby < 1.3 && o4_ppcg < 1.3,
        "OpenMP 4.0 others: {o4_cheby} {o4_ppcg}"
    );

    // §4.3: OpenCL CG ≈ 3× the best port; other solvers acceptable.
    let [cl_cg, cl_cheby, _] = ratios(&fig, ModelId::OpenCl, ModelId::Omp3F90);
    assert!(
        cl_cg > 2.4 && cl_cg < 3.6,
        "OpenCL KNC CG ratio {cl_cg} (paper ≈ 3×)"
    );
    assert!(
        cl_cheby < 2.0,
        "OpenCL KNC Chebyshev acceptable: {cl_cheby}"
    );
    assert!(cl_cg / cl_cheby > 1.5, "the anomaly must be CG-specific");

    // §4.3: RAJA native — "substantially higher runtimes ... for all
    // solvers".
    let raja = ratios(&fig, ModelId::Raja, ModelId::Omp3F90);
    assert!(
        raja.iter().all(|r| *r > 1.6),
        "RAJA KNC substantially slower: {raja:?}"
    );

    // §4.3: hierarchical parallelism "roughly halving the solve time for
    // the CG and PPCG solvers on the KNC".
    let [flat_cg, _, flat_ppcg] = times(&fig, ModelId::Kokkos);
    let [hp_cg, _, hp_ppcg] = times(&fig, ModelId::KokkosHP);
    let cg_gain = flat_cg / hp_cg;
    let ppcg_gain = flat_ppcg / hp_ppcg;
    assert!(
        cg_gain > 1.7 && cg_gain < 2.4,
        "HP CG gain {cg_gain} (paper ≈ 2×)"
    );
    assert!(
        ppcg_gain > 1.7 && ppcg_gain < 2.4,
        "HP PPCG gain {ppcg_gain} (paper ≈ 2×)"
    );
}

#[test]
fn figure11_growth_shape() {
    // §5: offload models have high intercepts (overheads dominate small
    // meshes) that are hidden as the mesh grows; GPU growth is linear.
    let cfg_of = |cells: usize| {
        let mut cfg = Scale {
            cells,
            steps: 1,
            eps: 1.0e-10,
            sweep_max: 0,
            seed: tealeaf::driver::TEA_DEFAULT_SEED,
        }
        .config(SolverKind::ConjugateGradient);
        cfg.tl_max_iters = 20_000;
        cfg
    };
    let gpu = devices::gpu_k20x();
    let cpu = devices::cpu_xeon_e5_2670_x2();

    // intercept: at a tiny mesh the offloaded CUDA run must be far slower
    // than the host OpenMP run; at a large mesh the gap must shrink below
    // the bandwidth ratio.
    let small_cuda = run_simulation_seeded(ModelId::Cuda, &gpu, &cfg_of(64), 0).unwrap();
    let small_omp = run_simulation_seeded(ModelId::Omp3F90, &cpu, &cfg_of(64), 0).unwrap();
    assert!(
        small_cuda.sim_seconds() > 3.0 * small_omp.sim_seconds(),
        "offload overheads must dominate tiny meshes ({} vs {})",
        small_cuda.sim_seconds(),
        small_omp.sim_seconds()
    );
    // §5: "the OpenMP Fortran 90 implementation achieves the best
    // performance up to 9×10⁵ cells" — the CPU is cache-resident below
    // the knee and must still beat the overhead-laden GPU there…
    let mid_cuda = run_simulation_seeded(ModelId::Cuda, &gpu, &cfg_of(500), 0).unwrap();
    let mid_omp = run_simulation_seeded(ModelId::Omp3F90, &cpu, &cfg_of(500), 0).unwrap();
    assert!(
        mid_omp.sim_seconds() < mid_cuda.sim_seconds(),
        "below the cache knee the tuned CPU must lead ({} vs {})",
        mid_omp.sim_seconds(),
        mid_cuda.sim_seconds()
    );
    // …while past the knee (the paper's crossover) the GPU pulls ahead.
    let mut big = cfg_of(1225);
    big.tl_eps = 1.0e-8; // growth comparison, not convergence depth
    let big_cuda = run_simulation_seeded(ModelId::Cuda, &gpu, &big, 0).unwrap();
    let big_omp = run_simulation_seeded(ModelId::Omp3F90, &cpu, &big, 0).unwrap();
    assert!(
        big_cuda.sim_seconds() < big_omp.sim_seconds(),
        "past the crossover the GPU must lead ({} vs {})",
        big_cuda.sim_seconds(),
        big_omp.sim_seconds()
    );

    // CPU cache knee (§5: "CPU caches have become saturated ... creating a
    // memory latency and bandwidth bottleneck"): per-cell-per-iteration
    // cost must rise between a cache-resident and a DRAM-resident mesh.
    // anchor on the cache plateau (750² ≈ 5.6·10⁵ cells, below the
    // paper's 9·10⁵ knee) and past it (1250² ≈ 1.6·10⁶ cells)
    let small = run_simulation_seeded(ModelId::Omp3F90, &cpu, &cfg_of(750), 0).unwrap();
    let large = run_simulation_seeded(ModelId::Omp3F90, &cpu, &cfg_of(1250), 0).unwrap();
    let unit =
        |r: &tealeaf::RunReport| r.sim_seconds() / (r.cells() as f64 * r.total_iterations as f64);
    // the blend region of the cache model makes the decay gradual, as the
    // paper describes ("over time creating a memory latency and bandwidth
    // bottleneck")
    assert!(
        unit(&large) > 1.3 * unit(&small),
        "cache knee: per-cell-iteration cost {:.3e} -> {:.3e}",
        unit(&small),
        unit(&large)
    );
}

#[test]
fn figure12_bandwidth_shape() {
    let s = scale();
    // §6: "the device-optimised implementations, OpenMP 3.0 and CUDA,
    // achieve the best overall memory bandwidth utilisation."
    let cpu = devices::cpu_xeon_e5_2670_x2();
    let cpu_regime = s.regime_device(&cpu);
    let fig_cpu = runtime_figure(&cpu, s);
    let frac = |fig: &[(ModelId, Vec<tealeaf::RunReport>)], m: ModelId, d: &simdev::DeviceSpec| {
        let (_, reports) = fig.iter().find(|(mm, _)| *mm == m).unwrap();
        reports.iter().map(|r| r.stream_fraction(d)).sum::<f64>() / reports.len() as f64
    };
    let f90 = frac(&fig_cpu, ModelId::Omp3F90, &cpu_regime);
    assert!(f90 > 0.8 && f90 <= 1.0, "tuned CPU utilisation {f90}");
    for m in figure_models(simdev::DeviceKind::Cpu) {
        let f = frac(&fig_cpu, m, &cpu_regime);
        assert!(
            f <= f90 + 1e-9,
            "{m:?} cannot beat the tuned baseline ({f} vs {f90})"
        );
        assert!(f > 0.4, "{m:?} achieves a plausible fraction ({f})");
    }

    // §6: Kokkos "performs to within 10% of the best achieved memory
    // bandwidth for both the CPU and GPU".
    let gpu = devices::gpu_k20x();
    let gpu_regime = s.regime_device(&gpu);
    let fig_gpu = runtime_figure(&gpu, s);
    let cuda = frac(&fig_gpu, ModelId::Cuda, &gpu_regime);
    let kokkos_gpu = frac(&fig_gpu, ModelId::Kokkos, &gpu_regime);
    assert!(cuda > 0.85, "CUDA utilisation {cuda}");
    assert!(
        kokkos_gpu > cuda * 0.72,
        "Kokkos GPU within ~25 % of CUDA ({kokkos_gpu} vs {cuda})"
    );

    // §6: "The results on the KNC are poor" for the portable models, and
    // HP improves on flat Kokkos.
    let knc = devices::knc_xeon_phi();
    let knc_regime = s.regime_device(&knc);
    let fig_knc = runtime_figure(&knc, s);
    let flat = frac(&fig_knc, ModelId::Kokkos, &knc_regime);
    let hp = frac(&fig_knc, ModelId::KokkosHP, &knc_regime);
    assert!(
        flat < 0.5,
        "flat Kokkos KNC utilisation must be poor ({flat})"
    );
    assert!(
        hp > flat * 1.5,
        "HP must substantially improve KNC utilisation ({hp} vs {flat})"
    );
}
