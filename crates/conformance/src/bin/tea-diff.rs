//! `tea-diff` — run two ports in lock-step and bisect their first
//! divergence to a kernel invocation.
//!
//! ```text
//! cargo run -p tea-conformance --bin tea-diff -- \
//!     --ref serial --cand cuda --deck crates/conformance/decks/conf_small.in
//! ```
//!
//! `--deck` accepts a builtin deck name (`conf_small`, `conf_tiny`) or a
//! `tea.in` file path. Exit status: 0 bit-identical, 1 divergence found,
//! 2 usage or setup error.

use std::process::ExitCode;

use tea_conformance::{builtin_deck, diff_models, model_name, parse_model};
use tea_core::config::{SolverKind, TeaConfig};
use tealeaf::driver::TEA_DEFAULT_SEED;

fn usage() -> String {
    let ports: Vec<&str> = tealeaf::ModelId::ALL
        .iter()
        .map(|m| model_name(*m))
        .collect();
    format!(
        "usage: tea-diff --ref <port> --cand <port> [--deck <name|path>] \
         [--solver cg|chebyshev|ppcg|jacobi] [--cells N] [--steps N] [--seed N]\n\
         ports: {}",
        ports.join(", ")
    )
}

struct Args {
    reference: String,
    candidate: String,
    deck: Option<String>,
    solver: Option<SolverKind>,
    cells: Option<usize>,
    steps: Option<usize>,
    seed: u64,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        reference: String::new(),
        candidate: String::new(),
        deck: None,
        solver: None,
        cells: None,
        steps: None,
        seed: TEA_DEFAULT_SEED,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--ref" => args.reference = value()?,
            "--cand" => args.candidate = value()?,
            "--deck" => args.deck = Some(value()?),
            "--solver" => {
                args.solver = Some(match value()?.as_str() {
                    "cg" => SolverKind::ConjugateGradient,
                    "chebyshev" | "cheby" => SolverKind::Chebyshev,
                    "ppcg" => SolverKind::Ppcg,
                    "jacobi" => SolverKind::Jacobi,
                    other => return Err(format!("unknown solver '{other}'")),
                })
            }
            "--cells" => {
                args.cells = Some(value()?.parse().map_err(|_| "bad --cells".to_string())?)
            }
            "--steps" => {
                args.steps = Some(value()?.parse().map_err(|_| "bad --steps".to_string())?)
            }
            "--seed" => args.seed = value()?.parse().map_err(|_| "bad --seed".to_string())?,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    if args.reference.is_empty() || args.candidate.is_empty() {
        return Err(usage());
    }
    Ok(args)
}

fn load_config(args: &Args) -> Result<TeaConfig, String> {
    let mut cfg = match &args.deck {
        None => {
            // A small, fast default: every solver converges here.
            let mut cfg = TeaConfig::paper_problem(48);
            cfg.end_step = 2;
            cfg.tl_eps = 1.0e-12;
            cfg.tl_ch_cg_presteps = 10;
            cfg
        }
        Some(deck) => {
            let text = match builtin_deck(deck) {
                Some(text) => text.to_string(),
                None => std::fs::read_to_string(deck)
                    .map_err(|e| format!("cannot read deck {deck}: {e}"))?,
            };
            TeaConfig::parse(&text).map_err(|e| format!("deck {deck}: {e}"))?
        }
    };
    if let Some(solver) = args.solver {
        cfg.solver = solver;
    }
    if let Some(cells) = args.cells {
        cfg.x_cells = cells;
        cfg.y_cells = cells;
    }
    if let Some(steps) = args.steps {
        cfg.end_step = steps;
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let (Some(reference), Some(candidate)) =
        (parse_model(&args.reference), parse_model(&args.candidate))
    else {
        eprintln!("unknown port name\n{}", usage());
        return ExitCode::from(2);
    };
    let cfg = match load_config(&args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match diff_models(reference, candidate, &cfg, args.seed) {
        Err(e) => {
            eprintln!("cannot build ports: {e}");
            ExitCode::from(2)
        }
        Ok(outcome) => {
            println!("{outcome}");
            if outcome.divergence.is_some() {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
    }
}
