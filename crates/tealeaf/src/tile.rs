//! 2-D tile geometry, overlapped halo exchange and exactly-ordered
//! reductions for the distributed solvers.
//!
//! [`distributed`](crate::distributed) decomposes the global mesh over a
//! [`Grid2d`] of ranks, one rectangular tile each. This module owns the
//! pure mechanics that make a tiled run **bit-identical** to the serial
//! reference:
//!
//! * **Exchange** ([`post_halo`]/[`complete_halo`]): every tile sends its
//!   boundary strips to up to eight neighbours (four edges, four
//!   corners), posts all sends up-front, and drains edges before corners
//!   so the depth×depth corner blocks — the only messages carrying true
//!   diagonal-neighbour data — overwrite whatever the full-extent edge
//!   payloads put in the ghost corners. After completion, every ghost
//!   cell a kernel reads holds exactly the value the serial padded mesh
//!   holds at the same global coordinate.
//! * **Interior/boundary split** ([`Span`]): a stencil pass is run as an
//!   interior pass (cells whose 5-point stencil reads no ghost cell)
//!   while the exchange is in flight, then a boundary ring pass after it
//!   completes. No TeaLeaf kernel writes a field its stencil reads, so
//!   cell update order is irrelevant and the split is bit-identical to
//!   the monolithic sweep by construction (property-tested in
//!   `tests/prop_tile_split.rs`).
//! * **Reductions** ([`ordered_reduce`]): the serial reference folds each
//!   interior row left-to-right from 0.0, then folds the per-row partials
//!   in global row order. Splitting a mesh row across tiles breaks the
//!   in-row fold (f64 addition is not associative), so the row fold is
//!   *pipelined*: each tile receives the running sums for its rows from
//!   its west neighbour in one batched message, continues the fold cell
//!   by cell, and forwards east. East-most tiles hold exact serial row
//!   partials and are the only ranks contributing to the rank-ordered
//!   allreduce; row-major rank numbering makes their rank order the
//!   global row order, so the global fold bit-equals the serial one.

use mpisim::topology::{dir_tag, Dir, Grid2d};
use mpisim::{ExchangeMetrics, Rank, Tag};
use tea_core::config::TeaConfig;
use tea_core::field::Field2d;
use tea_core::halo::update_halo;
use tea_core::mesh::Mesh2d;
use tea_core::state::generate_chunk;

/// Base tag of the reduction carry pipeline (flows west→east only).
pub const TAG_CARRY: Tag = 15;

/// Interior cell span (global cells) owned by tile `index` of `count`
/// along one axis — the same floor split the 1-D stripes used.
pub fn tile_span(cells: usize, index: usize, count: usize) -> (usize, usize) {
    (index * cells / count, (index + 1) * cells / count)
}

/// Placement of one rank's tile: its grid coordinates and local mesh.
#[derive(Debug, Clone, PartialEq)]
pub struct TileGeom {
    pub grid: Grid2d,
    pub tx: usize,
    pub ty: usize,
    pub mesh: Mesh2d,
}

impl TileGeom {
    /// Build the geometry of `rank`'s tile on `grid`.
    ///
    /// The local extents reuse the stripe formula on both axes
    /// (`min + d·span_start`), so a `1×ranks` grid reproduces the 1-D
    /// stripe meshes bit-for-bit; bit-identity of the derived `dx`/`dy`
    /// against the global mesh is pinned by the conformance goldens.
    pub fn build(config: &TeaConfig, grid: Grid2d, rank: usize) -> TileGeom {
        let (tx, ty) = grid.coords(rank);
        let (c0, c1) = tile_span(config.x_cells, tx, grid.tiles_x());
        let (r0, r1) = tile_span(config.y_cells, ty, grid.tiles_y());
        let (cols, rows) = (c1 - c0, r1 - r0);
        assert!(
            cols >= config.halo_depth && rows >= config.halo_depth,
            "tile of {cols}x{rows} cells cannot carry a depth-{} halo; use a coarser tile grid",
            config.halo_depth
        );
        let dx = (config.xmax - config.xmin) / config.x_cells as f64;
        let dy = (config.ymax - config.ymin) / config.y_cells as f64;
        let x = if grid.tiles_x() == 1 {
            (config.xmin, config.xmax)
        } else {
            (config.xmin + dx * c0 as f64, config.xmin + dx * c1 as f64)
        };
        let y = if grid.tiles_y() == 1 {
            (config.ymin, config.ymax)
        } else {
            (config.ymin + dy * r0 as f64, config.ymin + dy * r1 as f64)
        };
        TileGeom {
            grid,
            tx,
            ty,
            mesh: Mesh2d::new(cols, rows, config.halo_depth, x, y),
        }
    }

    /// This tile's rank in row-major numbering.
    pub fn rank(&self) -> usize {
        self.grid.rank_at(self.tx, self.ty)
    }

    /// The rank neighbouring this tile in `dir`, if any.
    pub fn neighbor(&self, dir: Dir) -> Option<usize> {
        self.grid.neighbor(self.rank(), dir)
    }
}

/// One rank's tile of the global problem: geometry plus every solver
/// field, halo cells included.
#[derive(Clone)]
pub struct Tile {
    pub geom: TileGeom,
    pub density: Vec<f64>,
    pub energy: Vec<f64>,
    pub u: Vec<f64>,
    pub u0: Vec<f64>,
    pub p: Vec<f64>,
    pub r: Vec<f64>,
    pub w: Vec<f64>,
    pub z: Vec<f64>,
    pub sd: Vec<f64>,
    pub kx: Vec<f64>,
    pub ky: Vec<f64>,
}

impl Tile {
    pub fn build(config: &TeaConfig, grid: Grid2d, rank: usize) -> Tile {
        let geom = TileGeom::build(config, grid, rank);
        let mut density = Field2d::zeros(&geom.mesh);
        let mut energy = Field2d::zeros(&geom.mesh);
        generate_chunk(&geom.mesh, &config.states, &mut density, &mut energy);
        let len = geom.mesh.len();
        Tile {
            geom,
            density: density.into_vec(),
            energy: energy.into_vec(),
            u: vec![0.0; len],
            u0: vec![0.0; len],
            p: vec![0.0; len],
            r: vec![0.0; len],
            w: vec![0.0; len],
            z: vec![0.0; len],
            sd: vec![0.0; len],
            kx: vec![0.0; len],
            ky: vec![0.0; len],
        }
    }
}

// ---------------------------------------------------------------------------
// interior/boundary split
// ---------------------------------------------------------------------------

/// Which cells of the tile interior a kernel pass covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Span {
    /// Cells whose 5-point stencil reads only interior cells — safe to
    /// update while a depth-1 halo exchange is still in flight.
    Inner,
    /// The one-cell perimeter ring; its stencil reads ghost cells, so it
    /// runs after the exchange completes.
    Ring,
    /// The whole interior in one monolithic pass.
    All,
}

/// Run `f` over every interior flat index the span covers, row-major.
pub fn for_cells(mesh: &Mesh2d, span: Span, mut f: impl FnMut(usize)) {
    let (i0, i1, w, j1) = (mesh.i0(), mesh.i1(), mesh.width(), mesh.j1());
    let inner_j = (i0 + 1)..j1.saturating_sub(1);
    let inner_i = (i0 + 1)..i1.saturating_sub(1);
    match span {
        Span::All => {
            for j in i0..j1 {
                for i in i0..i1 {
                    f(j * w + i);
                }
            }
        }
        Span::Inner => {
            for j in inner_j {
                for i in inner_i.clone() {
                    f(j * w + i);
                }
            }
        }
        Span::Ring => {
            for j in i0..j1 {
                if inner_j.contains(&j) {
                    for i in i0..i1 {
                        if !inner_i.contains(&i) {
                            f(j * w + i);
                        }
                    }
                } else {
                    for i in i0..i1 {
                        f(j * w + i);
                    }
                }
            }
        }
    }
}

/// Number of cells [`for_cells`] visits for this span.
pub fn span_cells(mesh: &Mesh2d, span: Span) -> u64 {
    let nx = mesh.x_cells as u64;
    let ny = mesh.y_cells as u64;
    let inner = nx.saturating_sub(2) * ny.saturating_sub(2);
    match span {
        Span::All => nx * ny,
        Span::Inner => inner,
        Span::Ring => nx * ny - inner,
    }
}

// ---------------------------------------------------------------------------
// halo exchange
// ---------------------------------------------------------------------------

/// Pack the depth-`depth` strip adjacent to the `dir` edge/corner of the
/// tile, ordered inward from the edge. Edge payloads span the full
/// padded extent along the edge; corner payloads are `depth × depth`
/// interior blocks.
fn gather(mesh: &Mesh2d, field: &[f64], dir: Dir, depth: usize) -> Vec<f64> {
    let w = mesh.width();
    let h = mesh.height();
    let (i0, i1, j1) = (mesh.i0(), mesh.i1(), mesh.j1());
    let row = |j: usize| j * w..(j + 1) * w;
    match dir {
        Dir::N | Dir::S => {
            let mut p = Vec::with_capacity(depth * w);
            for k in 0..depth {
                let j = if dir == Dir::N { j1 - 1 - k } else { i0 + k };
                p.extend_from_slice(&field[row(j)]);
            }
            p
        }
        Dir::E | Dir::W => {
            let mut p = Vec::with_capacity(depth * h);
            for k in 0..depth {
                let i = if dir == Dir::E { i1 - 1 - k } else { i0 + k };
                for j in 0..h {
                    p.push(field[j * w + i]);
                }
            }
            p
        }
        _ => {
            let (dx, dy) = dir.offset();
            let mut p = Vec::with_capacity(depth * depth);
            for kj in 0..depth {
                let j = if dy > 0 { j1 - 1 - kj } else { i0 + kj };
                for ki in 0..depth {
                    let i = if dx > 0 { i1 - 1 - ki } else { i0 + ki };
                    p.push(field[j * w + i]);
                }
            }
            p
        }
    }
}

/// Unpack a neighbour's payload into this tile's ghost cells on the
/// `dir` side (`dir` = where the neighbour sits; `data` = the
/// neighbour's [`gather`] towards us).
fn scatter(mesh: &Mesh2d, field: &mut [f64], dir: Dir, depth: usize, data: &[f64]) {
    let w = mesh.width();
    let h = mesh.height();
    let (i0, i1, j1) = (mesh.i0(), mesh.i1(), mesh.j1());
    match dir {
        Dir::N | Dir::S => {
            for k in 0..depth {
                let j = if dir == Dir::N { j1 + k } else { i0 - 1 - k };
                field[j * w..(j + 1) * w].clone_from_slice(&data[k * w..(k + 1) * w]);
            }
        }
        Dir::E | Dir::W => {
            for k in 0..depth {
                let i = if dir == Dir::E { i1 + k } else { i0 - 1 - k };
                for j in 0..h {
                    field[j * w + i] = data[k * h + j];
                }
            }
        }
        _ => {
            let (dx, dy) = dir.offset();
            for kj in 0..depth {
                let j = if dy > 0 { j1 + kj } else { i0 - 1 - kj };
                for ki in 0..depth {
                    let i = if dx > 0 { i1 + ki } else { i0 - 1 - ki };
                    field[j * w + i] = data[kj * depth + ki];
                }
            }
        }
    }
}

/// Open one halo-exchange window: refresh the local reflective halo
/// (unless `reflect` is false — Jacobi's previous-iterate scratch keeps
/// its physical ghosts at the serial value 0.0), then post one buffered
/// send per existing neighbour. Compute may proceed on interior cells
/// until [`complete_halo`] drains the matching receives.
pub fn post_halo(
    rank: &Rank,
    geom: &TileGeom,
    field: &mut [f64],
    base: Tag,
    depth: usize,
    reflect: bool,
    metrics: &mut ExchangeMetrics,
) {
    if reflect {
        update_halo(&geom.mesh, field, depth);
    }
    for dir in Dir::ALL {
        let Some(peer) = geom.neighbor(dir) else {
            continue;
        };
        let payload = gather(&geom.mesh, field, dir, depth);
        metrics.record(dir, payload.len());
        rank.send(peer, dir_tag(base, dir), payload);
    }
}

/// Drain the receives of the window [`post_halo`] opened — edges first,
/// corners last, so corner blocks are authoritative in the ghost
/// corners. Returns the number of elements received.
pub fn complete_halo(
    rank: &Rank,
    geom: &TileGeom,
    field: &mut [f64],
    base: Tag,
    depth: usize,
) -> u64 {
    let mut received = 0;
    for dir in Dir::ALL {
        let Some(peer) = geom.neighbor(dir) else {
            continue;
        };
        // The neighbour sent towards us, i.e. with the travel direction
        // opposite to where it sits from our point of view.
        let data = rank.recv(peer, dir_tag(base, dir.opposite()));
        received += data.len() as u64;
        scatter(&geom.mesh, field, dir, depth, &data);
    }
    received
}

/// A blocking exchange: post, then immediately complete.
pub fn exchange_halo(
    rank: &Rank,
    geom: &TileGeom,
    field: &mut [f64],
    base: Tag,
    depth: usize,
    reflect: bool,
    metrics: &mut ExchangeMetrics,
) -> u64 {
    post_halo(rank, geom, field, base, depth, reflect, metrics);
    complete_halo(rank, geom, field, base, depth)
}

// ---------------------------------------------------------------------------
// exactly-ordered reductions
// ---------------------------------------------------------------------------

/// Exactly-ordered global reduction of a per-cell contribution: the
/// carry-pipelined row fold described in the module docs. Bit-equal to
/// the serial row-ordered reduction for any tile grid.
pub fn ordered_reduce(rank: &Rank, geom: &TileGeom, contribution: impl Fn(usize) -> f64) -> f64 {
    let m = &geom.mesh;
    let (i0, i1, w, j1) = (m.i0(), m.i1(), m.width(), m.j1());
    let rows = j1 - i0;
    let mut carries = match geom.neighbor(Dir::W) {
        Some(west) => rank.recv(west, dir_tag(TAG_CARRY, Dir::E)),
        None => vec![0.0; rows],
    };
    debug_assert_eq!(carries.len(), rows);
    for (slot, j) in (i0..j1).enumerate() {
        let mut acc = carries[slot];
        for i in i0..i1 {
            acc += contribution(j * w + i);
        }
        carries[slot] = acc;
    }
    match geom.neighbor(Dir::E) {
        Some(east) => {
            rank.send(east, dir_tag(TAG_CARRY, Dir::E), carries);
            // Non-last-column ranks hold incomplete row folds; they
            // contribute nothing to the global fold.
            rank.allreduce_ordered(&[])
        }
        None => rank.allreduce_ordered(&carries),
    }
}

/// Four-component analogue of [`ordered_reduce`] (the field summary).
pub fn ordered_reduce4(
    rank: &Rank,
    geom: &TileGeom,
    contribution: impl Fn(usize) -> [f64; 4],
) -> [f64; 4] {
    let m = &geom.mesh;
    let (i0, i1, w, j1) = (m.i0(), m.i1(), m.width(), m.j1());
    let rows = j1 - i0;
    let mut carries = match geom.neighbor(Dir::W) {
        Some(west) => rank.recv(west, dir_tag(TAG_CARRY, Dir::E)),
        None => vec![0.0; rows * 4],
    };
    debug_assert_eq!(carries.len(), rows * 4);
    for (slot, j) in (i0..j1).enumerate() {
        let mut acc = [
            carries[slot * 4],
            carries[slot * 4 + 1],
            carries[slot * 4 + 2],
            carries[slot * 4 + 3],
        ];
        for i in i0..i1 {
            let c = contribution(j * w + i);
            for q in 0..4 {
                acc[q] += c[q];
            }
        }
        carries[slot * 4..slot * 4 + 4].clone_from_slice(&acc);
    }
    match geom.neighbor(Dir::E) {
        Some(east) => {
            rank.send(east, dir_tag(TAG_CARRY, Dir::E), carries);
            rank.allreduce_ordered_components::<4>(&[])
        }
        None => {
            let parts: Vec<[f64; 4]> = carries
                .chunks_exact(4)
                .map(|c| [c[0], c[1], c[2], c[3]])
                .collect();
            rank.allreduce_ordered_components(&parts)
        }
    }
}

// ---------------------------------------------------------------------------
// overlap accounting
// ---------------------------------------------------------------------------

/// What a rank's overlapped exchange windows hid, in deterministic
/// logical units: cell updates and exchanged elements (never wall
/// time, so reports are reproducible bit-for-bit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverlapStats {
    /// Exchange windows opened (one per overlapped stencil pass).
    pub windows: u64,
    /// Cell updates run while an exchange window was open.
    pub interior_cells: u64,
    /// Cell updates run after the window completed (the boundary ring).
    pub boundary_cells: u64,
    /// Elements received through overlapped windows.
    pub exchanged_elements: u64,
    /// Exchanged elements hidden behind interior compute:
    /// `min(interior cell updates, exchanged elements)` per window.
    pub hidden_elements: u64,
}

impl OverlapStats {
    /// Account one exchange window.
    pub fn absorb_window(&mut self, interior: u64, boundary: u64, exchanged: u64) {
        self.windows += 1;
        self.interior_cells += interior;
        self.boundary_cells += boundary;
        self.exchanged_elements += exchanged;
        self.hidden_elements += interior.min(exchanged);
    }

    /// Fold another rank's stats into this one.
    pub fn merge(&mut self, other: &OverlapStats) {
        self.windows += other.windows;
        self.interior_cells += other.interior_cells;
        self.boundary_cells += other.boundary_cells;
        self.exchanged_elements += other.exchanged_elements;
        self.hidden_elements += other.hidden_elements;
    }

    /// Fraction of exchanged elements hidden behind interior compute.
    pub fn overlap_efficiency(&self) -> f64 {
        if self.exchanged_elements == 0 {
            0.0
        } else {
            self.hidden_elements as f64 / self.exchanged_elements as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_span_partitions_both_axes() {
        for cells in [7usize, 16, 33, 50] {
            for count in 1..=5 {
                let mut covered = 0;
                for index in 0..count {
                    let (c0, c1) = tile_span(cells, index, count);
                    assert!(c0 <= c1);
                    covered += c1 - c0;
                    if index > 0 {
                        assert_eq!(c0, tile_span(cells, index - 1, count).1);
                    }
                }
                assert_eq!(covered, cells);
            }
        }
    }

    #[test]
    fn inner_and_ring_partition_the_interior() {
        for (nx, ny) in [(6usize, 5usize), (1, 4), (4, 1), (1, 1), (2, 2), (3, 8)] {
            for halo in [1usize, 2] {
                let mesh = Mesh2d::new(nx, ny, halo, (0.0, 1.0), (0.0, 1.0));
                let collect = |span| {
                    let mut v = Vec::new();
                    for_cells(&mesh, span, |k| v.push(k));
                    v
                };
                let all = collect(Span::All);
                let inner = collect(Span::Inner);
                let ring = collect(Span::Ring);
                assert_eq!(all.len() as u64, span_cells(&mesh, Span::All));
                assert_eq!(inner.len() as u64, span_cells(&mesh, Span::Inner));
                assert_eq!(ring.len() as u64, span_cells(&mesh, Span::Ring));
                let mut merged: Vec<usize> = inner.iter().chain(ring.iter()).copied().collect();
                merged.sort_unstable();
                assert_eq!(merged, all, "{nx}x{ny} halo {halo}");
                assert!(inner.iter().all(|k| !ring.contains(k)));
            }
        }
    }

    #[test]
    fn strip_grid_geometry_matches_the_legacy_stripes() {
        let cfg = TeaConfig::paper_problem(16);
        let grid = Grid2d::column_strip(4);
        for rank in 0..4 {
            let geom = TileGeom::build(&cfg, grid, rank);
            let (r0, r1) = tile_span(cfg.y_cells, rank, 4);
            assert_eq!(geom.mesh.x_cells, cfg.x_cells);
            assert_eq!(geom.mesh.y_cells, r1 - r0);
            assert_eq!((geom.mesh.xmin, geom.mesh.xmax), (cfg.xmin, cfg.xmax));
            assert_eq!((geom.tx, geom.ty), (0, rank));
        }
    }

    #[test]
    fn overlap_stats_cap_hidden_at_the_exchange_size() {
        let mut s = OverlapStats::default();
        s.absorb_window(100, 36, 40); // plenty of interior: all hidden
        s.absorb_window(10, 36, 40); // interior too small: partial
        assert_eq!(s.windows, 2);
        assert_eq!(s.hidden_elements, 50);
        assert_eq!(s.exchanged_elements, 80);
        assert!((s.overlap_efficiency() - 50.0 / 80.0).abs() < 1e-15);
    }
}
