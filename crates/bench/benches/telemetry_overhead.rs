//! Disabled-sink overhead guard.
//!
//! The telemetry layer promises to be nearly free when nobody is
//! listening: with the default [`TelemetrySink::disabled`] every hook is
//! one `Option` check — no formatting, no allocation, no lock. This
//! bench holds that promise two ways:
//!
//! 1. **Micro**: the per-call cost of a disabled span pair and a
//!    disabled event, with an interpolated `format_args!` name that
//!    would allocate if the disabled path ever evaluated it. Guarded by
//!    a deliberately loose assertion (< 1 µs/op against a real cost of a
//!    few ns) so it trips on an accidental allocation or lock, not on a
//!    noisy CI machine.
//! 2. **Macro**: wall time of a full solve through the plain entry point
//!    (disabled hooks throughout driver, solvers, ports) versus the same
//!    solve with a live collector, reported as a percentage. The two
//!    reports must also stay bit-identical — telemetry is an observer.
//!
//! `cargo bench -p tea-bench --bench telemetry_overhead` for the full
//! measurement, `-- --test` for the quick CI smoke (same assertions,
//! fewer iterations).

use std::hint::black_box;
use std::time::Instant;

use simdev::devices;
use tea_bench::Scale;
use tea_core::config::SolverKind;
use tealeaf::driver::TEA_DEFAULT_SEED;
use tealeaf::{run_simulation, run_simulation_traced, ModelId, RunReport, TelemetrySink};

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite measurements"));
    xs[xs.len() / 2]
}

/// Median ns per call of `f` over `batches` timed batches.
fn ns_per_op(batches: usize, ops: usize, mut f: impl FnMut()) -> f64 {
    let mut per = Vec::with_capacity(batches);
    for _ in 0..batches {
        let t0 = Instant::now();
        for _ in 0..ops {
            f();
        }
        per.push(t0.elapsed().as_secs_f64() * 1e9 / ops as f64);
    }
    median(per)
}

fn summary_bits(report: &RunReport) -> [u64; 4] {
    [
        report.summary.volume.to_bits(),
        report.summary.mass.to_bits(),
        report.summary.internal_energy.to_bits(),
        report.summary.temperature.to_bits(),
    ]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let (batches, ops, runs) = if quick {
        (5, 20_000, 3)
    } else {
        (15, 200_000, 7)
    };

    // -- micro: the disabled path must stay a bare Option check --------
    let disabled = TelemetrySink::disabled();
    let mut i = 0u64;
    let span_pair_ns = ns_per_op(batches, ops, || {
        i += 1;
        let id = disabled.open_span("bench", format_args!("iteration {i}"), black_box(1.5));
        disabled.close_span(black_box(id), black_box(2.5));
    });
    let event_ns = ns_per_op(batches, ops, || {
        i += 1;
        disabled.event("bench", format_args!("event {i}"), black_box(3.5));
    });

    // An enabled pair formats, allocates and locks; measured for the
    // ratio, not guarded — enabling a collector is an explicit opt-in.
    let (enabled, _collector) = TelemetrySink::collecting();
    let enabled_pair_ns = ns_per_op(batches, ops / 10, || {
        i += 1;
        let id = enabled.open_span("bench", format_args!("iteration {i}"), black_box(1.5));
        enabled.close_span(black_box(id), black_box(2.5));
    });

    println!("disabled span open/close : {span_pair_ns:8.1} ns/op");
    println!("disabled event           : {event_ns:8.1} ns/op");
    println!("enabled  span open/close : {enabled_pair_ns:8.1} ns/op");

    const CEILING_NS: f64 = 1_000.0;
    assert!(
        span_pair_ns < CEILING_NS && event_ns < CEILING_NS,
        "disabled telemetry hooks cost {span_pair_ns:.0}/{event_ns:.0} ns/op — \
         the disabled path must not format, allocate or lock"
    );

    // -- macro: a full solve with hooks disabled vs a live collector ---
    let scale = Scale::small();
    let cfg = scale.config(SolverKind::ConjugateGradient);
    let device = devices::cpu_xeon_e5_2670_x2();

    let mut plain_s = Vec::with_capacity(runs);
    let mut traced_s = Vec::with_capacity(runs);
    let mut plain_report = None;
    let mut traced_report = None;
    for _ in 0..runs {
        let t0 = Instant::now();
        let r = run_simulation(ModelId::Serial, &device, &cfg).expect("plain run");
        plain_s.push(t0.elapsed().as_secs_f64());
        plain_report = Some(r);

        let (sink, _collector) = TelemetrySink::collecting();
        let t0 = Instant::now();
        let r = run_simulation_traced(ModelId::Serial, &device, &cfg, TEA_DEFAULT_SEED, sink)
            .expect("traced run");
        traced_s.push(t0.elapsed().as_secs_f64());
        traced_report = Some(r);
    }
    let (plain_report, traced_report) = (plain_report.unwrap(), traced_report.unwrap());
    assert_eq!(
        summary_bits(&plain_report),
        summary_bits(&traced_report),
        "telemetry perturbed the solve"
    );

    let (p, t) = (median(plain_s), median(traced_s));
    println!(
        "full solve {}x{} CG       : {:.1} ms disabled, {:.1} ms collecting ({:+.1}%)",
        cfg.x_cells,
        cfg.y_cells,
        p * 1e3,
        t * 1e3,
        (t / p - 1.0) * 100.0
    );
    println!("telemetry overhead guard: ok");
}
