//! Custom reducers.
//!
//! Kokkos `parallel_reduce` defaults to a zero-initialised sum; kernels
//! needing more (TeaLeaf's multi-variable field summary — §3.3 "it was
//! necessary to write custom initialisation and join functions") supply a
//! reducer with `init` and `join`.

/// A Kokkos-style custom reduction over values of type `Value`.
pub trait Reducer: Sync {
    /// The reduced value type.
    type Value: Send + Sync;

    /// The identity element ("custom initialisation function").
    fn init(&self) -> Self::Value;

    /// Combine two partial results ("custom join function"). Must be
    /// associative; the framework joins partials in index order so results
    /// are deterministic.
    fn join(&self, into: &mut Self::Value, other: Self::Value);
}

/// The default sum reducer (`f64`, zero-initialised).
#[derive(Debug, Clone, Copy, Default)]
pub struct SumReducer;

impl Reducer for SumReducer {
    type Value = f64;

    fn init(&self) -> f64 {
        0.0
    }

    fn join(&self, into: &mut f64, other: f64) {
        *into += other;
    }
}

/// Fixed-arity array sum, e.g. the 4-component field summary.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArraySumReducer<const K: usize>;

impl<const K: usize> Reducer for ArraySumReducer<K> {
    type Value = [f64; K];

    fn init(&self) -> [f64; K] {
        [0.0; K]
    }

    fn join(&self, into: &mut [f64; K], other: [f64; K]) {
        for k in 0..K {
            into[k] += other[k];
        }
    }
}

/// A Kokkos *functor*: a C++-style class with an overloaded call operator
/// "where the function operator is overloaded and encapsulates the core
/// functional logic. This pattern requires that Views are declared as
/// local variables inside the class" (paper §2.4). The lambda forms of
/// `parallel_for` are the succinct alternative §3.3 could not use under
/// CUDA 7.0.
pub trait Functor: Sync {
    /// `KOKKOS_INLINE_FUNCTION void operator()(const int i) const`.
    fn operator(&self, i: usize);
}

/// A reducing functor: `operator()(const int i, double& sum)`.
pub trait ReduceFunctor: Sync {
    /// Returns this index's contribution to the zero-initialised sum.
    fn operator(&self, i: usize) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_reducer() {
        let r = SumReducer;
        let mut acc = r.init();
        r.join(&mut acc, 2.0);
        r.join(&mut acc, 3.5);
        assert_eq!(acc, 5.5);
    }

    #[test]
    fn array_reducer() {
        let r = ArraySumReducer::<3>;
        let mut acc = r.init();
        r.join(&mut acc, [1.0, 2.0, 3.0]);
        r.join(&mut acc, [0.5, 0.5, 0.5]);
        assert_eq!(acc, [1.5, 2.5, 3.5]);
    }
}
