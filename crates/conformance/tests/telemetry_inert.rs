//! Telemetry inertness and trace-shape guarantees.
//!
//! The telemetry layer must be a pure observer: a run with a collector
//! installed must produce bit-identical numbers to an untraced run (and
//! therefore to the committed golden registry), and the trace itself
//! must be deterministic — two runs of the same (deck, model, solver,
//! seed) emit byte-identical JSONL, because every record is stamped with
//! *simulated* time.

use tea_conformance::golden::{golden_path, parse_registry};
use tea_conformance::{
    builtin_deck, deck_config, model_name, natural_device, GOLDEN_PORTS, GOLDEN_SOLVERS,
};
use tea_core::config::{SolverKind, TeaConfig};
use tea_telemetry::export::to_jsonl;
use tea_telemetry::Record;
use tealeaf::driver::TEA_DEFAULT_SEED;
use tealeaf::{run_simulation, run_simulation_traced, ModelId, RunReport, TelemetrySink};

fn tiny_config(solver: SolverKind) -> TeaConfig {
    let mut cfg = deck_config("conf_tiny", builtin_deck("conf_tiny").expect("builtin"));
    cfg.solver = solver;
    cfg
}

fn run_traced(model: ModelId, cfg: &TeaConfig) -> (RunReport, Vec<Record>) {
    let (sink, collector) = TelemetrySink::collecting();
    let report = run_simulation_traced(model, &natural_device(model), cfg, TEA_DEFAULT_SEED, sink)
        .expect("traced run");
    (report, collector.records())
}

fn summary_bits(report: &RunReport) -> [u64; 4] {
    [
        report.summary.volume.to_bits(),
        report.summary.mass.to_bits(),
        report.summary.internal_energy.to_bits(),
        report.summary.temperature.to_bits(),
    ]
}

/// Every port, traced vs untraced, must agree to the bit — including the
/// simulated clock, which the telemetry reads but must never advance.
#[test]
fn traced_runs_are_bit_identical_to_untraced() {
    let cfg = tiny_config(SolverKind::ConjugateGradient);
    for model in GOLDEN_PORTS {
        let plain = run_simulation(model, &natural_device(model), &cfg).expect("untraced run");
        let (traced, records) = run_traced(model, &cfg);
        assert!(
            !records.is_empty(),
            "{}: collector saw nothing",
            model_name(model)
        );
        assert_eq!(
            summary_bits(&plain),
            summary_bits(&traced),
            "{}: telemetry perturbed the field summary",
            model_name(model)
        );
        assert_eq!(
            plain.sim.seconds.to_bits(),
            traced.sim.seconds.to_bits(),
            "{}: telemetry perturbed the simulated clock",
            model_name(model)
        );
        assert_eq!(plain.total_iterations, traced.total_iterations);
        assert_eq!(plain.sim.kernels, traced.sim.kernels);
    }
}

/// Traced runs must also match the committed golden registry (spot
/// check; the full sweep is the `#[ignore]` test below).
#[test]
fn traced_runs_match_committed_goldens_spot() {
    let committed = std::fs::read_to_string(golden_path("conf_tiny")).expect("registry");
    let goldens = parse_registry(&committed).expect("registry parses");
    for (model, solver) in [
        (ModelId::Serial, SolverKind::ConjugateGradient),
        (ModelId::Cuda, SolverKind::Chebyshev),
    ] {
        let (report, _) = run_traced(model, &tiny_config(solver));
        let golden = goldens
            .iter()
            .find(|g| g.solver == solver.name() && g.port == model_name(model))
            .unwrap_or_else(|| panic!("no golden row for {}/{}", solver.name(), model_name(model)));
        assert_eq!(golden.iterations, report.total_iterations);
        assert_eq!(golden.converged, report.converged);
        assert_eq!(
            golden.bits,
            summary_bits(&report),
            "{}/{}: traced run drifted from the golden registry",
            solver.name(),
            model_name(model)
        );
    }
}

/// Full sweep: both decks × all four solvers × all eight ports, traced,
/// against the committed registry. Slow; run with `--ignored`.
#[test]
#[ignore = "full traced golden sweep; minutes of runtime"]
fn traced_sweep_matches_committed_goldens() {
    for deck in ["conf_tiny", "conf_small"] {
        let committed = std::fs::read_to_string(golden_path(deck)).expect("registry");
        let goldens = parse_registry(&committed).expect("registry parses");
        let base = deck_config(deck, builtin_deck(deck).expect("builtin"));
        for solver in GOLDEN_SOLVERS {
            let mut cfg = base.clone();
            cfg.solver = solver;
            for model in GOLDEN_PORTS {
                let (report, _) = run_traced(model, &cfg);
                let golden = goldens
                    .iter()
                    .find(|g| g.solver == solver.name() && g.port == model_name(model))
                    .unwrap_or_else(|| {
                        panic!(
                            "no golden row for {deck}/{}/{}",
                            solver.name(),
                            model_name(model)
                        )
                    });
                assert_eq!(golden.iterations, report.total_iterations, "{deck}");
                assert_eq!(
                    golden.bits,
                    summary_bits(&report),
                    "{deck}/{}/{}: traced run drifted",
                    solver.name(),
                    model_name(model)
                );
            }
        }
    }
}

/// Traces are stamped with simulated time only, so two identical runs
/// must serialize to byte-identical JSONL.
#[test]
fn identical_runs_emit_byte_identical_traces() {
    for solver in [SolverKind::ConjugateGradient, SolverKind::Ppcg] {
        let cfg = tiny_config(solver);
        let (_, records_a) = run_traced(ModelId::OpenCl, &cfg);
        let (_, records_b) = run_traced(ModelId::OpenCl, &cfg);
        assert_eq!(
            to_jsonl(&records_a),
            to_jsonl(&records_b),
            "{}: trace is not deterministic",
            solver.name()
        );
    }
}

/// Structural invariants of a full-run trace: every opened span is
/// closed, parents reference earlier opens, and the hierarchy runs
/// step → solve → iteration → kernel.
#[test]
fn trace_spans_nest_step_solve_iteration_kernel() {
    let (_, records) = run_traced(ModelId::Serial, &tiny_config(SolverKind::ConjugateGradient));
    let mut open_cats = std::collections::HashMap::new(); // id -> cat
    let mut unclosed = std::collections::HashSet::new();
    let mut kernels_under_iterations = 0usize;
    for record in &records {
        match record {
            Record::Open { id, cat, .. } => {
                open_cats.insert(*id, *cat);
                unclosed.insert(*id);
            }
            Record::Close { id, .. } => {
                assert!(unclosed.remove(id), "close without open (id {id})");
            }
            Record::Complete { parent, cat, .. } => {
                if *parent != 0 {
                    let parent_cat = open_cats
                        .get(parent)
                        .unwrap_or_else(|| panic!("{cat} span parented to unknown id"));
                    if *cat == "kernel" && *parent_cat == "iteration" {
                        kernels_under_iterations += 1;
                    }
                }
            }
            Record::Instant { .. } => {}
        }
    }
    assert!(unclosed.is_empty(), "{} spans never closed", unclosed.len());
    let cats: Vec<&str> = open_cats.values().copied().collect();
    for expected in ["step", "solve", "iteration"] {
        assert!(
            cats.contains(&expected),
            "no '{expected}' span in a full run"
        );
    }
    assert!(
        kernels_under_iterations > 0,
        "kernel spans must nest under iteration spans"
    );
}

/// The disabled sink (the default) must leave no trace anywhere: the
/// plain entry points produce reports with no collector attached and
/// identical numbers whether or not telemetry code is linked in.
#[test]
fn default_runs_carry_no_collector() {
    let cfg = tiny_config(SolverKind::Jacobi);
    let report =
        run_simulation(ModelId::Serial, &natural_device(ModelId::Serial), &cfg).expect("plain run");
    let (traced, records) = run_traced(ModelId::Serial, &cfg);
    assert_eq!(summary_bits(&report), summary_bits(&traced));
    assert!(records.iter().any(|r| r.cat() == "iteration"));
}
