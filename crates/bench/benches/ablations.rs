//! Ablation study of the cost-model mechanisms (run via `cargo bench -p
//! tea-bench --bench ablations`).
//!
//! DESIGN.md claims each of the paper's headline effects arises from a
//! specific mechanism. This harness verifies that causally: it re-runs
//! the affected experiment with one mechanism neutralised and reports the
//! effect with and without it.
//!
//! | mechanism ablated | paper effect that should disappear |
//! |---|---|
//! | KNC branch penalty | flat Kokkos' KNC pain vs Kokkos HP (§3.3/§4.3) |
//! | lost-vectorization penalty | RAJA's KNC collapse (§4.1/§4.3) |
//! | fixed launch overheads | Figure 11's offload intercepts (§5) |
//! | LLC bandwidth plateau | Figure 11's CPU cache knee (§5) |

use simdev::{devices, DeviceSpec};
use tea_bench::Scale;
use tea_core::config::SolverKind;
use tea_core::tablefmt::Table;
use tealeaf::{run_simulation_seeded, ModelId};

fn scale() -> Scale {
    Scale {
        cells: 192,
        steps: 1,
        eps: 1.0e-12,
        sweep_max: 0,
        seed: tealeaf::driver::TEA_DEFAULT_SEED,
    }
}

fn run(model: ModelId, device: &DeviceSpec, solver: SolverKind) -> f64 {
    run_simulation_seeded(model, device, &scale().config(solver), 0)
        .expect("supported pair")
        .sim_seconds()
}

fn ratio(model: ModelId, baseline: ModelId, device: &DeviceSpec, solver: SolverKind) -> f64 {
    run(model, device, solver) / run(baseline, device, solver)
}

fn ablate_branch_penalty(table: &mut Table) {
    let knc = scale().regime_device(&devices::knc_xeon_phi());
    let mut no_branch = knc.clone();
    no_branch.branch_penalty = 1.0;
    let with = ratio(
        ModelId::Kokkos,
        ModelId::KokkosHP,
        &knc,
        SolverKind::ConjugateGradient,
    );
    let without = ratio(
        ModelId::Kokkos,
        ModelId::KokkosHP,
        &no_branch,
        SolverKind::ConjugateGradient,
    );
    table.row(&[
        "KNC branch penalty".into(),
        "Kokkos flat / Kokkos HP, KNC CG".into(),
        format!("{with:.2}x"),
        format!("{without:.2}x"),
        assess(with > 1.6, without < 1.2),
    ]);
}

fn ablate_novec_penalty(table: &mut Table) {
    // Vectorization loss matters most where vectors are widest: the KNC
    // (novec penalty 2.4). RAJA's "substantially higher runtimes for all
    // solvers" there (§4.3) should collapse towards the index-traffic
    // residue without it. (On the CPU the Chebyshev-vs-CG differential is
    // carried jointly with the cited §4.1 quirk, so the KNC is the clean
    // observable.)
    let knc = scale().regime_device(&devices::knc_xeon_phi());
    let mut no_novec = knc.clone();
    no_novec.novec_penalty = 1.0;
    let with = ratio(ModelId::Raja, ModelId::Omp3F90, &knc, SolverKind::Ppcg);
    let without = ratio(ModelId::Raja, ModelId::Omp3F90, &no_novec, SolverKind::Ppcg);
    table.row(&[
        "lost-vectorization penalty".into(),
        "RAJA / OpenMP F90, KNC PPCG".into(),
        format!("{with:.2}x"),
        format!("{without:.2}x"),
        assess(with > 1.8, without < with - 0.4),
    ]);
}

fn ablate_launch_overheads(table: &mut Table) {
    // Figure 11 intercept: unscaled GPU device at a tiny mesh.
    let gpu = devices::gpu_k20x();
    let mut free_launch = gpu.clone();
    free_launch.overhead_scale = 0.0;
    let tiny = Scale {
        cells: 64,
        ..scale()
    };
    let sweep = |device: &DeviceSpec| {
        let mut cfg = tiny.config(SolverKind::ConjugateGradient);
        cfg.tl_eps = 1.0e-10;
        let small = run_simulation_seeded(ModelId::Cuda, device, &cfg, 0).unwrap();
        // per-iteration cost at the tiny mesh ÷ the asymptotic per-byte
        // bound: >> 1 when overhead-dominated
        let per_iter = small.sim_seconds() / small.total_iterations as f64;
        let bw_bound = (small.sim.app_bytes as f64 / small.total_iterations as f64)
            / (device.stream_bw_gbs * 1e9);
        per_iter / bw_bound
    };
    let with = sweep(&gpu);
    let without = sweep(&free_launch);
    table.row(&[
        "fixed launch overheads".into(),
        "CUDA 64x64 per-iter cost / bandwidth bound".into(),
        format!("{with:.1}x"),
        format!("{without:.1}x"),
        assess(with > 3.0, without < 1.5),
    ]);
}

fn ablate_cache_plateau(table: &mut Table) {
    // the CPU knee: per-cell-iteration cost growth from the cache plateau
    // to a DRAM-resident mesh
    let cpu = devices::cpu_xeon_e5_2670_x2();
    let mut no_cache = cpu.clone();
    no_cache.llc_bytes = 0;
    let knee = |device: &DeviceSpec| {
        let unit = |cells: usize| {
            let mut cfg = Scale { cells, ..scale() }.config(SolverKind::ConjugateGradient);
            cfg.tl_eps = 1.0e-8;
            cfg.tl_max_iters = 20_000;
            let r = run_simulation_seeded(ModelId::Omp3F90, device, &cfg, 0).unwrap();
            r.sim_seconds() / (r.cells() as f64 * r.total_iterations as f64)
        };
        unit(1250) / unit(625)
    };
    let with = knee(&cpu);
    let without = knee(&no_cache);
    table.row(&[
        "LLC bandwidth plateau".into(),
        "CPU per-cell-iter cost, 1250^2 / 625^2".into(),
        format!("{with:.2}x"),
        format!("{without:.2}x"),
        assess(with > 1.25, (without - 1.0).abs() < 0.1),
    ]);
}

fn assess(effect_present: bool, effect_gone: bool) -> String {
    match (effect_present, effect_gone) {
        (true, true) => "mechanism causal".into(),
        (true, false) => "effect persists — NOT causal".into(),
        (false, _) => "effect missing with mechanism on".into(),
    }
}

fn main() {
    let mut table = Table::new(
        "Ablations: each cost-model mechanism vs the paper effect it produces",
        &[
            "mechanism ablated",
            "observable",
            "with",
            "without",
            "verdict",
        ],
    );
    ablate_branch_penalty(&mut table);
    ablate_novec_penalty(&mut table);
    ablate_launch_overheads(&mut table);
    ablate_cache_plateau(&mut table);
    println!("{}", table.render());
    let rendered = table.render();
    assert!(
        !rendered.contains("NOT causal") && !rendered.contains("effect missing"),
        "an ablation failed — a DESIGN.md mechanism claim does not hold"
    );
    println!("All mechanism claims verified causally.");
}
