//! # parpool
//!
//! Host-side parallel execution substrate for the TeaLeaf reproduction.
//!
//! The paper's CPU results are produced by two very different runtimes:
//! OpenMP's fork-join pool with *static* chunk scheduling, and Intel's
//! OpenCL CPU implementation built on TBB's *work-stealing* scheduler
//! (§4.1 — the source of the OpenCL CPU variance). This crate provides
//! faithful Rust counterparts of both:
//!
//! * [`StaticPool`] — persistent workers, contiguous per-worker index
//!   ranges, barrier per parallel region. Models OpenMP
//!   `schedule(static)` with pinned threads.
//! * [`StealPool`] — persistent workers over a [`crossbeam_deque`] injector
//!   with random stealing, fine-grained blocks, and a steal counter so the
//!   scheduling noise can be observed. Models TBB.
//! * [`SerialExec`] — inline execution, the determinism reference.
//!
//! All three implement [`Executor`]. Reductions are **deterministic by
//! construction**: every executor computes one partial per index and the
//! partials are summed in index order, so any thread count, any scheduler
//! and any executor produce bit-identical results — the property the
//! cross-port consistency tests rely on.
//!
//! ## Example
//!
//! ```
//! use parpool::{Executor, SerialExec, StaticPool};
//!
//! let pool = StaticPool::new(4);
//! let f = |i: usize| (i as f64).sqrt();
//! // ordered per-index partials make the parallel sum bit-identical to serial
//! assert_eq!(pool.run_sum(1000, &f), SerialExec.run_sum(1000, &f));
//! ```

pub mod executor;
pub mod metrics;
pub mod permute;
pub mod shared;
pub mod static_pool;
pub mod steal_pool;
pub mod tiled;

pub use executor::{run_sum_many, Executor, SerialExec};
pub use metrics::PoolMetrics;
pub use permute::PermutedExec;
pub use shared::UnsafeSlice;
pub use static_pool::StaticPool;
pub use steal_pool::StealPool;
pub use tiled::TiledExec;

use std::sync::OnceLock;

/// Default worker count: `PARPOOL_THREADS` when set (how the conformance
/// golden matrix pins 1/2/4-thread runs — the analogue of
/// `OMP_NUM_THREADS`), otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("PARPOOL_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Shared process-wide static pool (created on first use).
pub fn global_static() -> &'static StaticPool {
    static POOL: OnceLock<StaticPool> = OnceLock::new();
    POOL.get_or_init(|| StaticPool::new(default_threads()))
}

/// Shared process-wide work-stealing pool (created on first use).
pub fn global_steal() -> &'static StealPool {
    static POOL: OnceLock<StealPool> = OnceLock::new();
    POOL.get_or_init(|| StealPool::new(default_threads()))
}
