//! IR-lowering equivalence suite: kernels lowered from the shared IR
//! must be bit-for-bit identical to the serial reference under every
//! schedule a tuned launch configuration can legally produce.
//!
//! Three layers are fuzzed:
//!
//! * **row kernels × schedules** — the shared row bodies driven through
//!   [`parpool::TiledExec`] (fuzzed tile/team shapes, the autotuner's
//!   parameter space) and [`parpool::PermutedExec`] (adversarial order)
//!   must write the same field bytes and fold the same reduction bits
//!   as a plain serial sweep;
//! * **registry shapes** — every committed tuning-registry entry's
//!   tile/team shape, replayed as an actual schedule, leaves
//!   reductions bit-identical;
//! * **whole solves × ports × tuning** — every supported port solves a
//!   randomised problem to the same temperature bits with the tuning
//!   registry on and off, and fused ports (CUDA, OpenCL, OpenMP 3.0,
//!   Kokkos) agree bitwise with the unfused serial lowering — fusion
//!   and tuning are cost-model effects only.

use proptest::prelude::*;

use parpool::{Executor, PermutedExec, SerialExec, StaticPool, TiledExec, UnsafeSlice};
use simdev::devices;
use tea_core::config::{SolverKind, TeaConfig};
use tea_core::halo::update_halo;
use tea_core::mesh::Mesh2d;
use tea_core::state::{Geometry, State};
use tealeaf::ir::{KernelId, KERNELS};
use tealeaf::ports::common;
use tealeaf::{run_simulation, tune, ModelId};

/// Deterministic pseudo-random positive field from a seed.
fn field(len: usize, seed: u64, lo: f64, span: f64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            lo + span * ((state >> 11) as f64 / (1u64 << 53) as f64)
        })
        .collect()
}

/// One matvec + one CG update through `exec`; returns the reduction
/// pair and the mutated fields.
fn cg_round(
    mesh: &Mesh2d,
    exec: &dyn Executor,
    p: &[f64],
    kx: &[f64],
    ky: &[f64],
    u0: &[f64],
    r0: &[f64],
) -> (f64, f64, Vec<f64>, Vec<f64>, Vec<f64>) {
    let j0 = mesh.i0();
    let mut w = vec![0.0; mesh.len()];
    let mut u = u0.to_vec();
    let mut r = r0.to_vec();
    let mut z = vec![0.0; mesh.len()];
    let pw = {
        let wv = UnsafeSlice::new(&mut w);
        exec.run_sum(mesh.y_cells, &|jj| {
            // SAFETY: rows are disjoint.
            unsafe { common::row_cg_calc_w(mesh, j0 + jj, p, kx, ky, &wv) }
        })
    };
    let alpha = 0.125; // any finite value exercises the same arithmetic
    let rrn = {
        let (uv, rv, zv) = (
            UnsafeSlice::new(&mut u),
            UnsafeSlice::new(&mut r),
            UnsafeSlice::new(&mut z),
        );
        exec.run_sum(mesh.y_cells, &|jj| {
            // SAFETY: rows are disjoint.
            unsafe {
                common::row_cg_calc_ur(mesh, j0 + jj, alpha, false, p, &w, kx, ky, &uv, &rv, &zv)
            }
        })
    };
    (pw, rrn, w, u, r)
}

fn assert_bits_eq(label: &str, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (k, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}[{k}]: {x:e} != {y:e} (bitwise)"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Row kernels through fuzzed tiled/teamed and permuted schedules
    /// produce the same field bytes and reduction bits as the serial
    /// sweep.
    #[test]
    fn row_kernels_bit_identical_under_tuned_schedules(
        tile in 1usize..96,
        team in 1usize..12,
        seed in 0u64..=u64::MAX,
        threads in 1usize..6,
    ) {
        let mesh = Mesh2d::square(24);
        let len = mesh.len();
        let mut p = field(len, seed, -2.0, 4.0);
        update_halo(&mesh, &mut p, 1);
        let kx = field(len, seed ^ 0xA5A5, 0.05, 3.0);
        let ky = field(len, seed ^ 0x5A5A, 0.05, 3.0);
        let u0 = field(len, seed ^ 0x1111, -1.0, 2.0);
        let r0 = field(len, seed ^ 0x2222, -1.0, 2.0);

        let reference = cg_round(&mesh, &SerialExec, &p, &kx, &ky, &u0, &r0);

        let pool = StaticPool::new(threads);
        let tiled_serial = TiledExec::new(&SerialExec, tile, team);
        let tiled_pool = TiledExec::new(&pool, tile, team);
        let permuted = PermutedExec::new(&tiled_pool, seed);
        let schedules: [(&str, &dyn Executor); 3] = [
            ("tiled(serial)", &tiled_serial),
            ("tiled(pool)", &tiled_pool),
            ("permuted(tiled(pool))", &permuted),
        ];
        for (name, exec) in schedules {
            let got = cg_round(&mesh, exec, &p, &kx, &ky, &u0, &r0);
            prop_assert_eq!(reference.0.to_bits(), got.0.to_bits(), "{}: p·w", name);
            prop_assert_eq!(reference.1.to_bits(), got.1.to_bits(), "{}: r·r", name);
            assert_bits_eq(name, &reference.2, &got.2);
            assert_bits_eq(name, &reference.3, &got.3);
            assert_bits_eq(name, &reference.4, &got.4);
        }
    }

    /// Full solves on a randomised two-state problem: every supported
    /// port reaches the serial reference's temperature bits, with the
    /// tuning registry active and inactive.
    #[test]
    fn solves_bit_identical_across_ports_and_tuning(
        hot_energy in 1.0..40.0f64,
        cells in 16usize..26,
        solver_pick in 0usize..3,
    ) {
        let solver = [
            SolverKind::ConjugateGradient,
            SolverKind::Chebyshev,
            SolverKind::Ppcg,
        ][solver_pick];
        let mut cfg = TeaConfig::paper_problem(cells);
        cfg.states = vec![
            State::background(10.0, 0.01),
            State {
                density: 0.2,
                energy: hot_energy,
                geometry: Geometry::Circle { cx: 5.0, cy: 5.0, radius: 2.5 },
            },
        ];
        cfg.solver = solver;
        cfg.end_step = 1;
        cfg.tl_eps = 1.0e-12;
        cfg.tl_max_iters = 8_000;
        cfg.tl_ch_cg_presteps = 10;

        // Fused ports must match the serial (unfused) lowering bitwise,
        // so fusion is numerics-inert; use one device every model runs on.
        let device = devices::cpu_xeon_e5_2670_x2();
        let reference = run_simulation(ModelId::Serial, &device, &cfg).unwrap();
        prop_assert!(reference.converged, "{solver} diverged");
        let want = reference.summary.temperature.to_bits();

        for model in ModelId::ALL {
            if model.supports(device.kind).is_none() {
                continue;
            }
            for autotune in [true, false] {
                cfg.tl_autotune = autotune;
                let r = run_simulation(model, &device, &cfg).unwrap();
                prop_assert_eq!(
                    want,
                    r.summary.temperature.to_bits(),
                    "{:?} autotune={} drifted from serial reference",
                    model,
                    autotune
                );
                prop_assert_eq!(
                    reference.total_iterations,
                    r.total_iterations,
                    "{:?} autotune={} changed iteration count",
                    model,
                    autotune
                );
            }
        }
        // CUDA never runs on the CPU device, and it lowers the fused
        // CG/PPCG/Chebyshev tails — cover it on its own device. The
        // numerics are device-independent (devices only shape cost), so
        // the same reference bits apply.
        let gpu = devices::gpu_k20x();
        for autotune in [true, false] {
            cfg.tl_autotune = autotune;
            let r = run_simulation(ModelId::Cuda, &gpu, &cfg).unwrap();
            prop_assert_eq!(
                want,
                r.summary.temperature.to_bits(),
                "Cuda autotune={} drifted from serial reference",
                autotune
            );
        }
        cfg.tl_autotune = true;
    }
}

/// Every committed tuning-registry shape, replayed as a real schedule,
/// keeps reductions bit-identical to serial — the registry can never
/// pick a configuration that perturbs numerics.
#[test]
fn registry_shapes_preserve_reduction_bits() {
    let n = 10_000;
    let f = |i: usize| ((i as f64) * 0.37).sin() / ((i % 11) as f64 + 0.5);
    let expect = SerialExec.run_sum(n, &f);
    let pool = StaticPool::new(4);
    let mut checked = 0usize;
    for device in [
        devices::cpu_xeon_e5_2670_x2(),
        devices::gpu_k20x(),
        devices::knc_xeon_phi(),
    ] {
        for desc in KERNELS {
            let Some(params) = tune::tuned_params(device.kind, desc.name) else {
                panic!("registry misses {} for {:?}", desc.name, device.kind);
            };
            let tile = (params.tile_x as usize) * (params.tile_y as usize);
            let exec = TiledExec::new(&pool, tile, params.team as usize);
            assert_eq!(
                exec.run_sum(n, &f).to_bits(),
                expect.to_bits(),
                "{:?}/{} shape tile={} team={} changed the sum",
                device.kind,
                desc.name,
                tile,
                params.team
            );
            checked += 1;
        }
    }
    assert_eq!(checked, 3 * KERNELS.len(), "registry coverage incomplete");
}

/// The IR's fusion legality is consistent with the data-flow it
/// declares: a legal pair's tail never stencil-reads a field its head
/// writes mid-flight.
#[test]
fn fusion_legality_matches_declared_dataflow() {
    use tealeaf::ir::FusionKind;
    for kind in FusionKind::ALL {
        assert!(
            kind.legal(),
            "{kind:?}: shipped fusion kinds must be legal by construction"
        );
        let head = kind.head().desc();
        let tail = kind.tail().desc();
        if let Some(read) = tail.stencil_read {
            assert!(
                !head.writes.contains(&read),
                "{kind:?}: tail stencil-reads {read:?} which head writes"
            );
        }
    }
    // And a deliberately illegal pair is rejected: CgCalcW's 5-point
    // read of `p` cannot ride behind CgCalcP's write of `p`.
    assert!(
        !tealeaf::ir::legal_pair(KernelId::CgCalcP.desc(), KernelId::CgCalcW.desc()),
        "matvec-after-p-update must be illegal to fuse"
    );
}
