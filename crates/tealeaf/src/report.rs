//! Run reports: what one (model, device, solver, mesh) execution produced.

use simdev::{ClockSnapshot, DeviceSpec};
use tea_core::config::SolverKind;
use tea_core::summary::Summary;

use crate::model_id::ModelId;
use crate::resilience::{RecoveryEvent, SolverHealth};

/// The result of one full simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    pub model: ModelId,
    pub device: String,
    pub solver: SolverKind,
    /// Interior mesh extent (square meshes: the side length).
    pub x_cells: usize,
    pub y_cells: usize,
    pub steps: usize,
    /// Sum of solver iterations over all steps.
    pub total_iterations: usize,
    /// Did every step's solve converge?
    pub converged: bool,
    /// Final field summary (the cross-port correctness fingerprint).
    pub summary: Summary,
    /// Simulated device-time counters.
    pub sim: ClockSnapshot,
    /// Host wall-clock seconds for the functional execution.
    pub wall_seconds: f64,
    /// Eigenvalue estimate from the last step (Chebyshev/PPCG).
    pub eigenvalues: Option<(f64, f64)>,
    /// Every recovery action the resilience layer took, stamped with the
    /// timestep it happened in (empty on healthy runs).
    pub recoveries: Vec<RecoveryEvent>,
    /// Every sentinel trip, as `(step, event)` (empty on healthy runs).
    pub health: Vec<(usize, SolverHealth)>,
    /// The step an unrecoverable solve died on; `None` when the run
    /// completed all `steps`.
    pub failed_step: Option<usize>,
}

impl RunReport {
    /// Simulated runtime in seconds — the quantity Figures 8–11 plot.
    pub fn sim_seconds(&self) -> f64 {
        self.sim.seconds
    }

    /// Fraction of the device's STREAM bandwidth achieved (Figure 12).
    pub fn stream_fraction(&self, device: &DeviceSpec) -> f64 {
        self.sim.achieved_bw_gbs() / device.stream_bw_gbs
    }

    /// Interior cell count.
    pub fn cells(&self) -> usize {
        self.x_cells * self.y_cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            model: ModelId::Cuda,
            device: "NVIDIA K20X GPU".into(),
            solver: SolverKind::ConjugateGradient,
            x_cells: 128,
            y_cells: 128,
            steps: 2,
            total_iterations: 100,
            converged: true,
            summary: Summary::default(),
            sim: ClockSnapshot {
                seconds: 2.0,
                kernels: 400,
                app_bytes: 300_000_000_000,
                transfers: 4,
                transfer_bytes: 1 << 20,
                flops: 1 << 30,
            },
            wall_seconds: 0.5,
            eigenvalues: None,
            recoveries: Vec::new(),
            health: Vec::new(),
            failed_step: None,
        }
    }

    #[test]
    fn stream_fraction() {
        let r = report();
        let device = simdev::devices::gpu_k20x();
        // 150 GB/s achieved over 180.1 GB/s STREAM
        let f = r.stream_fraction(&device);
        assert!((f - 150.0 / 180.1).abs() < 1e-9);
        assert_eq!(r.cells(), 128 * 128);
        assert_eq!(r.sim_seconds(), 2.0);
    }
}
