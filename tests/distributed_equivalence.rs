//! The distributed (multi-chunk, MPI-style) solve must be bit-identical
//! to the single-chunk serial reference for any rank count — the property
//! that makes the decomposition a pure implementation detail, as MPI is
//! in the reference TeaLeaf (§3).

use simdev::devices;
use tea_core::config::{SolverKind, TeaConfig};
use tealeaf::distributed::{
    run_distributed_cg, run_distributed_solver, run_distributed_solver_blocking,
};
use tealeaf::{run_simulation, ModelId};

fn config(cells: usize) -> TeaConfig {
    let mut cfg = TeaConfig::paper_problem(cells);
    cfg.solver = SolverKind::ConjugateGradient;
    cfg.end_step = 2;
    cfg.tl_eps = 1.0e-12;
    cfg.tl_max_iters = 2000;
    cfg
}

#[test]
fn distributed_cg_bit_identical_to_serial() {
    let cfg = config(48);
    let serial = run_simulation(ModelId::Serial, &devices::cpu_xeon_e5_2670_x2(), &cfg).unwrap();
    assert!(serial.converged);
    for ranks in [1, 2, 3, 4] {
        let dist = run_distributed_cg(ranks, &cfg);
        assert!(dist.converged, "{ranks} ranks must converge");
        assert_eq!(
            dist.total_iterations, serial.total_iterations,
            "{ranks} ranks: iteration count drifted"
        );
        let diff = dist.summary.max_abs_diff(&serial.summary);
        assert_eq!(diff, 0.0, "{ranks} ranks: summary differs by {diff:e}");
    }
}

#[test]
fn uneven_stripes_still_exact() {
    // 50 rows across 3 ranks → stripes of 16/17/17
    let cfg = config(50);
    let serial = run_simulation(ModelId::Serial, &devices::cpu_xeon_e5_2670_x2(), &cfg).unwrap();
    let dist = run_distributed_cg(3, &cfg);
    assert_eq!(dist.summary.max_abs_diff(&serial.summary), 0.0);
    assert_eq!(dist.total_iterations, serial.total_iterations);
}

#[test]
fn all_solvers_on_2d_grids_bit_identical_to_serial() {
    let mut cfg = TeaConfig::paper_problem(16);
    cfg.end_step = 2;
    cfg.tl_eps = 1.0e-10;
    for solver in [
        SolverKind::Jacobi,
        SolverKind::ConjugateGradient,
        SolverKind::Chebyshev,
        SolverKind::Ppcg,
    ] {
        cfg.solver = solver;
        let serial =
            run_simulation(ModelId::Serial, &devices::cpu_xeon_e5_2670_x2(), &cfg).unwrap();
        for (gx, gy) in [(2usize, 2usize), (3, 1), (1, 3)] {
            let overlapped = run_distributed_solver(gx, gy, &cfg);
            let blocking = run_distributed_solver_blocking(gx, gy, &cfg);
            assert_eq!(
                overlapped.total_iterations, serial.total_iterations,
                "{solver:?} on {gx}x{gy}: iteration count drifted"
            );
            assert_eq!(
                overlapped.summary.max_abs_diff(&serial.summary),
                0.0,
                "{solver:?} on {gx}x{gy}: summary drifted"
            );
            assert_eq!(overlapped.converged, serial.converged);
            assert_eq!(
                blocking.summary, overlapped.summary,
                "{solver:?} on {gx}x{gy}: overlap must not change bits"
            );
            assert_eq!(blocking.total_iterations, overlapped.total_iterations);
        }
    }
}

#[test]
fn rank_scaling_changes_nothing_numerically() {
    let cfg = config(40);
    let two = run_distributed_cg(2, &cfg);
    let five = run_distributed_cg(5, &cfg);
    assert_eq!(two.summary, five.summary);
    assert_eq!(two.total_iterations, five.total_iterations);
}
