//! Distributed (multi-tile) TeaLeaf over the MPI-like layer.
//!
//! The paper's models are node-level; "inter-node communications … is
//! handled with MPI in TeaLeaf" (§3). This module supplies that layer for
//! the reproduction: the global mesh is decomposed over a 2-D Cartesian
//! [`Grid2d`] of [`mpisim`] ranks, one rectangular [`Tile`] each. Every
//! solver the serial reference implements — Jacobi, CG, Chebyshev and
//! PPCG — runs distributed, exchanging halos with up to eight neighbours
//! (four edges, four corners) per stencil pass and combining reductions
//! with the exactly-ordered carry pipeline in [`crate::tile`].
//!
//! ## Communication/computation overlap
//!
//! Each stencil pass opens a halo window ([`tile::post_halo`]), updates
//! the interior cells — whose 5-point stencil reads no ghost cell — while
//! the exchange is in flight, completes the window, then updates the
//! boundary ring. Because no TeaLeaf kernel writes a field its stencil
//! reads, the split is **bit-identical** to the blocking schedule by
//! construction; [`run_distributed_solver_blocking`] exists so tests can
//! assert exactly that, and [`OverlapStats`] reports what each window hid
//! in deterministic logical units.
//!
//! ## Bit-identity
//!
//! Ranks own contiguous rectangles, reductions are carry-pipelined west
//! to east and folded in rank order (= global row order, thanks to the
//! row-major rank numbering), and ghost cells hold exactly the serial
//! padded-mesh values after every exchange — so a distributed run on any
//! `tiles_x × tiles_y` grid is bit-identical to the serial reference
//! (asserted by the integration tests and the conformance goldens).
//!
//! The one caveat: the distributed drivers replicate the serial solvers'
//! *healthy* control flow and skip the resilience sentinels, which are
//! numerically inert unless they trip. A deck whose serial solve trips a
//! sentinel would diverge — loudly, via the golden/equivalence checks.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use mpisim::{
    run_spmd, run_spmd_faulty, ExchangeMetrics, FaultDiagnostic, FaultSpec, Grid2d, Rank, Tag,
};
use tea_core::config::{Coefficient, SolverKind, TeaConfig};
use tea_core::summary::Summary;
use tea_telemetry::{Record, TelemetrySink};

use crate::cheby::{estimated_iterations, ChebyCoeffs, ChebyShift};
use crate::eigen::eigenvalue_estimate;
use crate::ir;
use crate::ports::common::{self, Us};
use crate::resilience::{RecoveryAction, RecoveryEvent, SolverHealth};
use crate::solver::cg::CgHistory;
use crate::solver::chebyshev::CHECK_INTERVAL;
use crate::tile::{self, OverlapStats, Span, Tile, TileGeom};

/// Result of a distributed run.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedReport {
    pub ranks: usize,
    pub total_iterations: usize,
    pub converged: bool,
    pub summary: Summary,
}

/// Row range (global interior rows) owned by `rank` of `size` in the
/// 1-D strip decomposition — the y-axis slice of [`tile::tile_span`].
pub fn stripe_rows(y_cells: usize, rank: usize, size: usize) -> (usize, usize) {
    tile::tile_span(y_cells, rank, size)
}

// ---------------------------------------------------------------------------
// per-rank worker
// ---------------------------------------------------------------------------

/// The fields a halo exchange can move, with their base tags and
/// boundary semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ex {
    Density,
    Energy,
    U,
    P,
    Sd,
    /// Jacobi's previous-iterate scratch (stored in `r`).
    RScratch,
}

impl Ex {
    fn base(self) -> Tag {
        match self {
            Ex::Density => 1,
            Ex::Energy => 2,
            Ex::U => 3,
            Ex::P => 4,
            Ex::Sd => 5,
            Ex::RScratch => 6,
        }
    }

    /// Whether the exchange refreshes the local reflective halo first.
    /// Jacobi's scratch is exchanged raw: the serial sweep reads 0.0 in
    /// its physical ghosts (the copy never writes them), so a reflective
    /// update there would change the answer.
    fn reflect(self) -> bool {
        !matches!(self, Ex::RScratch)
    }

    fn name(self) -> &'static str {
        match self {
            Ex::Density => "density",
            Ex::Energy => "energy",
            Ex::U => "u",
            Ex::P => "p",
            Ex::Sd => "sd",
            Ex::RScratch => "r-scratch",
        }
    }
}

/// Borrow the geometry and the field an [`Ex`] names, disjointly.
fn slot(t: &mut Tile, f: Ex) -> (&TileGeom, &mut Vec<f64>) {
    match f {
        Ex::Density => (&t.geom, &mut t.density),
        Ex::Energy => (&t.geom, &mut t.energy),
        Ex::U => (&t.geom, &mut t.u),
        Ex::P => (&t.geom, &mut t.p),
        Ex::Sd => (&t.geom, &mut t.sd),
        Ex::RScratch => (&t.geom, &mut t.r),
    }
}

/// One rank's solve state: its tile plus the exchange/overlap
/// instrumentation. The `clock` is logical — cell updates and exchanged
/// elements each cost one unit — so telemetry spans are bit-reproducible.
struct Worker<'a> {
    rank: &'a Rank,
    config: &'a TeaConfig,
    t: Tile,
    overlap: bool,
    stats: OverlapStats,
    metrics: ExchangeMetrics,
    tel: TelemetrySink,
    clock: f64,
}

impl Worker<'_> {
    /// Blocking exchange of one field's halo (no compute to overlap).
    fn exchange(&mut self, f: Ex, depth: usize) {
        let t0 = self.clock;
        let (geom, field) = slot(&mut self.t, f);
        let got = tile::exchange_halo(
            self.rank,
            geom,
            field,
            f.base(),
            depth,
            f.reflect(),
            &mut self.metrics,
        );
        self.clock = t0 + got as f64;
        self.tel.complete_span(
            "exchange",
            format_args!("{} halo", f.name()),
            t0,
            self.clock,
        );
    }

    /// Batched exchange of two independent fields' halos: both windows'
    /// sends are posted before either is drained, so the wires run
    /// concurrently and the pair is charged the slower exchange rather
    /// than the sum. The fields' tags keep the messages apart and the
    /// buffers are disjoint, so the received bits are identical to two
    /// back-to-back exchanges — which is what blocking mode still runs.
    fn exchange_pair(&mut self, a: Ex, b: Ex, depth: usize) {
        if !self.overlap {
            self.exchange(a, depth);
            self.exchange(b, depth);
            return;
        }
        let t0 = self.clock;
        for f in [a, b] {
            let (geom, field) = slot(&mut self.t, f);
            tile::post_halo(
                self.rank,
                geom,
                field,
                f.base(),
                depth,
                f.reflect(),
                &mut self.metrics,
            );
        }
        let mut slowest = 0u64;
        for f in [a, b] {
            let got = {
                let (geom, field) = slot(&mut self.t, f);
                tile::complete_halo(self.rank, geom, field, f.base(), depth)
            };
            self.tel.complete_span(
                "exchange",
                format_args!("{} halo", f.name()),
                t0,
                t0 + got as f64,
            );
            slowest = slowest.max(got);
        }
        self.clock = t0 + slowest as f64;
    }

    /// One stencil pass around one halo window. Overlapped mode posts
    /// the sends, runs the interior while the exchange is in flight,
    /// completes it, then runs the boundary ring; blocking mode finishes
    /// the exchange first and runs one monolithic pass. Both schedules
    /// write identical bits: no kernel writes a field its stencil reads,
    /// and the ring never runs before its ghosts are in.
    ///
    /// When the IR proves the kernel safe to ring-batch
    /// ([`ir::concurrent_ring`]: its ring stencil reads nothing its
    /// interior sweep writes), the boundary ring is enqueued directly
    /// behind the halo drain — second-stream style — and runs while the
    /// interior tail is still in flight, so the window closes at
    /// `max(interior, exchange + ring)` instead of
    /// `max(interior, exchange) + ring`. The execution order (interior,
    /// complete, ring) is unchanged; only the charged schedule tightens.
    fn overlapped_pass(
        &mut self,
        kernel: ir::KernelId,
        f: Ex,
        depth: usize,
        label: &str,
        run: &mut dyn FnMut(&mut Tile, Span),
    ) {
        let t0 = self.clock;
        if self.overlap {
            {
                let (geom, field) = slot(&mut self.t, f);
                tile::post_halo(
                    self.rank,
                    geom,
                    field,
                    f.base(),
                    depth,
                    f.reflect(),
                    &mut self.metrics,
                );
            }
            let interior = tile::span_cells(&self.t.geom.mesh, Span::Inner);
            run(&mut self.t, Span::Inner);
            let got = {
                let (geom, field) = slot(&mut self.t, f);
                tile::complete_halo(self.rank, geom, field, f.base(), depth)
            };
            // Logical timeline: the exchange and the interior pass share
            // the window's start; the window closes when both are done.
            let t_interior = t0 + interior as f64;
            let t_exchange = t0 + got as f64;
            self.tel.complete_span(
                "exchange",
                format_args!("{} halo", f.name()),
                t0,
                t_exchange,
            );
            self.tel
                .complete_span("interior", format_args!("{label} interior"), t0, t_interior);
            let ring = tile::span_cells(&self.t.geom.mesh, Span::Ring);
            let tb = if ir::concurrent_ring(kernel.desc()) {
                // Batched: the ring rides the drain's stream and overlaps
                // the interior tail.
                t_exchange
            } else {
                // A self-clobbering kernel would have to wait for both.
                t_interior.max(t_exchange)
            };
            run(&mut self.t, Span::Ring);
            self.clock = t_interior.max(tb + ring as f64);
            self.tel.complete_span(
                "boundary",
                format_args!("{label} ring"),
                tb,
                tb + ring as f64,
            );
            self.stats.absorb_window(interior, ring, got);
        } else {
            let got = {
                let (geom, field) = slot(&mut self.t, f);
                tile::exchange_halo(
                    self.rank,
                    geom,
                    field,
                    f.base(),
                    depth,
                    f.reflect(),
                    &mut self.metrics,
                )
            };
            self.clock = t0 + got as f64;
            self.tel.complete_span(
                "exchange",
                format_args!("{} halo", f.name()),
                t0,
                self.clock,
            );
            let all = tile::span_cells(&self.t.geom.mesh, Span::All);
            let ta = self.clock;
            run(&mut self.t, Span::All);
            self.clock = ta + all as f64;
            self.tel
                .complete_span("boundary", format_args!("{label}"), ta, self.clock);
            self.stats.absorb_window(0, all, got);
        }
    }

    /// A full (unsplit) kernel pass run inside a halo window it does not
    /// read from — e.g. the coefficient build riding the `u` exchange.
    fn overlapped_full(
        &mut self,
        f: Ex,
        depth: usize,
        label: &str,
        cells: u64,
        run: impl FnOnce(&mut Tile),
    ) {
        let t0 = self.clock;
        if self.overlap {
            {
                let (geom, field) = slot(&mut self.t, f);
                tile::post_halo(
                    self.rank,
                    geom,
                    field,
                    f.base(),
                    depth,
                    f.reflect(),
                    &mut self.metrics,
                );
            }
            run(&mut self.t);
            let got = {
                let (geom, field) = slot(&mut self.t, f);
                tile::complete_halo(self.rank, geom, field, f.base(), depth)
            };
            let t_run = t0 + cells as f64;
            let t_exchange = t0 + got as f64;
            self.tel.complete_span(
                "exchange",
                format_args!("{} halo", f.name()),
                t0,
                t_exchange,
            );
            self.tel
                .complete_span("interior", format_args!("{label}"), t0, t_run);
            self.clock = t_run.max(t_exchange);
            self.stats.absorb_window(cells, 0, got);
        } else {
            let got = {
                let (geom, field) = slot(&mut self.t, f);
                tile::exchange_halo(
                    self.rank,
                    geom,
                    field,
                    f.base(),
                    depth,
                    f.reflect(),
                    &mut self.metrics,
                )
            };
            self.clock = t0 + got as f64;
            self.tel.complete_span(
                "exchange",
                format_args!("{} halo", f.name()),
                t0,
                self.clock,
            );
            let ta = self.clock;
            run(&mut self.t);
            self.clock = ta + cells as f64;
            self.tel
                .complete_span("boundary", format_args!("{label}"), ta, self.clock);
            self.stats.absorb_window(0, cells, got);
        }
    }

    /// Exactly-ordered global reduction of a per-cell contribution.
    fn reduce(&self, contribution: impl Fn(&Tile, usize) -> f64) -> f64 {
        tile::ordered_reduce(self.rank, &self.t.geom, |k| contribution(&self.t, k))
    }

    /// Four-component analogue (the field summary).
    fn reduce4(&self, contribution: impl Fn(&Tile, usize) -> [f64; 4]) -> [f64; 4] {
        tile::ordered_reduce4(self.rank, &self.t.geom, |k| contribution(&self.t, k))
    }
}

// ---------------------------------------------------------------------------
// kernel passes
// ---------------------------------------------------------------------------
//
// Each pass destructures the tile so written fields get `Us` wrappers
// while read fields stay shared slices, exactly like the serial ports.
// SAFETY throughout: single-threaded within the rank, each cell written
// by exactly one call per pass.

fn k_init_u0(t: &mut Tile) {
    let Tile {
        geom,
        density,
        energy,
        u0,
        u,
        ..
    } = t;
    let mesh = &geom.mesh;
    let (u0, u) = (Us::new(u0), Us::new(u));
    for j in mesh.i0()..mesh.j1() {
        unsafe { common::row_init_u0(mesh, j, density, energy, &u0, &u) };
    }
}

fn k_init_coeffs(t: &mut Tile, coefficient: Coefficient, rx: f64, ry: f64) {
    let Tile {
        geom,
        density,
        kx,
        ky,
        ..
    } = t;
    let mesh = &geom.mesh;
    let (kx, ky) = (Us::new(kx), Us::new(ky));
    for j in mesh.i0()..=mesh.j1() {
        unsafe { common::row_init_coeffs(mesh, j, coefficient, rx, ry, density, &kx, &ky) };
    }
}

fn k_cg_init(t: &mut Tile) {
    let Tile {
        geom,
        u,
        u0,
        kx,
        ky,
        w,
        r,
        p,
        z,
        ..
    } = t;
    let mesh = &geom.mesh;
    let width = mesh.width();
    let (w, r, p, z) = (Us::new(w), Us::new(r), Us::new(p), Us::new(z));
    tile::for_cells(mesh, Span::All, |k| {
        let _ = unsafe { common::cell_cg_init(width, k, false, u, u0, kx, ky, &w, &r, &p, &z) };
    });
}

fn k_cg_calc_w(t: &mut Tile, span: Span) {
    let Tile {
        geom, p, kx, ky, w, ..
    } = t;
    let mesh = &geom.mesh;
    let width = mesh.width();
    let w = Us::new(w);
    tile::for_cells(mesh, span, |k| {
        let _ = unsafe { common::cell_cg_calc_w(width, k, p, kx, ky, &w) };
    });
}

fn k_cg_calc_ur(t: &mut Tile, alpha: f64) {
    let Tile {
        geom,
        p,
        w,
        kx,
        ky,
        u,
        r,
        z,
        ..
    } = t;
    let mesh = &geom.mesh;
    let width = mesh.width();
    let (u, r, z) = (Us::new(u), Us::new(r), Us::new(z));
    tile::for_cells(mesh, Span::All, |k| {
        let _ =
            unsafe { common::cell_cg_calc_ur(width, k, alpha, false, p, w, kx, ky, &u, &r, &z) };
    });
}

fn k_cg_calc_p(t: &mut Tile, beta: f64) {
    let Tile { geom, r, z, p, .. } = t;
    let p = Us::new(p);
    tile::for_cells(&geom.mesh, Span::All, |k| unsafe {
        common::cell_cg_calc_p(k, beta, false, r, z, &p)
    });
}

fn k_cheby_calc_p(t: &mut Tile, span: Span, first: bool, theta: f64, alpha: f64, beta: f64) {
    let Tile {
        geom,
        u,
        u0,
        kx,
        ky,
        w,
        r,
        p,
        ..
    } = t;
    let mesh = &geom.mesh;
    let width = mesh.width();
    let (w, r, p) = (Us::new(w), Us::new(r), Us::new(p));
    tile::for_cells(mesh, span, |k| unsafe {
        common::cell_cheby_calc_p(
            width, k, first, theta, alpha, beta, u, u0, kx, ky, &w, &r, &p,
        )
    });
}

fn k_add_p_to_u(t: &mut Tile) {
    let Tile { geom, p, u, .. } = t;
    let u = Us::new(u);
    tile::for_cells(&geom.mesh, Span::All, |k| unsafe {
        common::cell_add_p_to_u(k, p, &u)
    });
}

fn k_sd_init(t: &mut Tile, theta: f64) {
    let Tile { geom, r, sd, .. } = t;
    let sd = Us::new(sd);
    tile::for_cells(&geom.mesh, Span::All, |k| unsafe {
        common::cell_sd_init(k, theta, r, &sd)
    });
}

fn k_ppcg_w(t: &mut Tile, span: Span) {
    let Tile {
        geom,
        sd,
        kx,
        ky,
        w,
        ..
    } = t;
    let mesh = &geom.mesh;
    let width = mesh.width();
    let w = Us::new(w);
    tile::for_cells(mesh, span, |k| unsafe {
        common::cell_ppcg_w(width, k, sd, kx, ky, &w)
    });
}

fn k_ppcg_update(t: &mut Tile, alpha: f64, beta: f64) {
    let Tile {
        geom, w, u, r, sd, ..
    } = t;
    let (u, r, sd) = (Us::new(u), Us::new(r), Us::new(sd));
    tile::for_cells(&geom.mesh, Span::All, |k| unsafe {
        common::cell_ppcg_update(k, alpha, beta, w, &u, &r, &sd)
    });
}

/// `r ← u` over the span (the serial `row_jacobi_copy`). The scratch's
/// ghost cells are deliberately untouched: the raw exchange fills the
/// inter-tile ones, the physical ones stay 0.0 as in serial.
fn k_jacobi_copy(t: &mut Tile, span: Span) {
    let Tile { geom, u, r, .. } = t;
    tile::for_cells(&geom.mesh, span, |k| r[k] = u[k]);
}

fn k_jacobi_sweep(t: &mut Tile, span: Span) {
    let Tile {
        geom,
        u0,
        r,
        kx,
        ky,
        u,
        ..
    } = t;
    let mesh = &geom.mesh;
    let width = mesh.width();
    let u = Us::new(u);
    tile::for_cells(mesh, span, |k| {
        let _ = unsafe { common::cell_jacobi_iterate(width, k, u0, r, kx, ky, &u) };
    });
}

fn k_finalise(t: &mut Tile) {
    let Tile {
        geom,
        u,
        density,
        energy,
        ..
    } = t;
    let energy = Us::new(energy);
    tile::for_cells(&geom.mesh, Span::All, |k| unsafe {
        common::cell_finalise(k, u, density, &energy)
    });
}

// ---------------------------------------------------------------------------
// solver drivers (exact replicas of the serial control flow)
// ---------------------------------------------------------------------------

/// Outcome of one CG phase, mirroring `solver::cg::run_phase`.
struct CgPhase {
    iterations: usize,
    converged: bool,
    /// `rro` after the last iteration — the serial phase's `final_rrn`.
    rro: f64,
    initial: f64,
}

/// The checkpointing context a resilient distributed solve threads
/// through its solver driver (captured at the top of the step, like the
/// serial loop variables at that point).
struct CkptCtx<'s> {
    store: &'s CheckpointStore,
    step: usize,
    total_iterations: usize,
    converged_all: bool,
}

impl CkptCtx<'_> {
    /// Snapshot the worker at `(step, phase, iteration)` if the deck's
    /// checkpoint interval divides `iteration` (iteration 0 included —
    /// the step-start cut every restart can fall back to). Every rank
    /// calls this at the same loop tops, between the same exactly-ordered
    /// reductions, so the set of keys each rank saves is identical: any
    /// key common to all rings is a **consistent cut** of the exchange
    /// graph by construction — no in-flight halo message spans it.
    fn save(&self, wkr: &Worker, phase: u8, iteration: usize, state: LoopState) {
        let interval = wkr.config.tl_checkpoint_interval;
        if interval == 0 || !iteration.is_multiple_of(interval) {
            return;
        }
        wkr.tel.event(
            "resilience",
            format_args!(
                "checkpoint step {} phase {phase} iteration {iteration}",
                self.step
            ),
            wkr.clock,
        );
        self.store.save(
            wkr.rank.id(),
            TileCheckpoint {
                key: (self.step, phase, iteration),
                total_iterations: self.total_iterations,
                converged_all: self.converged_all,
                state,
                tile: wkr.t.clone(),
            },
        );
    }
}

/// One CG phase of at most `max_iters` iterations: `run_phase` with the
/// reductions recomputed from the written fields (bit-equal to the
/// serial fused-kernel partials) and the stencil pass overlapped on the
/// `p` exchange. `start` resumes mid-phase from a checkpoint.
fn cg_phase(
    wkr: &mut Worker,
    max_iters: usize,
    mut history: Option<&mut CgHistory>,
    ckpt: Option<&CkptCtx>,
    start: Option<(f64, f64, usize)>,
) -> CgPhase {
    let (mut rro, initial, mut iterations) = match start {
        Some(s) => s,
        None => {
            k_cg_init(&mut wkr.t);
            let rro = wkr.reduce(|t, k| t.r[k] * t.p[k]);
            (rro, rro, 0)
        }
    };
    let mut converged = initial.abs() <= f64::MIN_POSITIVE; // trivially solved
    while !converged && iterations < max_iters {
        if let Some(ck) = ckpt {
            ck.save(
                wkr,
                PHASE_PRIMARY,
                iterations,
                LoopState::Cg {
                    iteration: iterations,
                    rro,
                    initial,
                    alphas: history
                        .as_deref()
                        .map_or_else(Vec::new, |h| h.alphas.clone()),
                    betas: history
                        .as_deref()
                        .map_or_else(Vec::new, |h| h.betas.clone()),
                },
            );
        }
        wkr.overlapped_pass(
            ir::KernelId::CgCalcW,
            Ex::P,
            1,
            "cg_calc_w",
            &mut |t, span| k_cg_calc_w(t, span),
        );
        let pw = wkr.reduce(|t, k| t.p[k] * t.w[k]);
        let alpha = rro / pw;
        k_cg_calc_ur(&mut wkr.t, alpha);
        let rrn = wkr.reduce(|t, k| common::cell_norm(k, &t.r));
        let beta = rrn / rro;
        k_cg_calc_p(&mut wkr.t, beta);
        if let Some(h) = history.as_deref_mut() {
            h.alphas.push(alpha);
            h.betas.push(beta);
        }
        rro = rrn;
        iterations += 1;
        if rrn.abs() <= wkr.config.tl_eps * initial.abs() {
            converged = true;
        }
    }
    CgPhase {
        iterations,
        converged,
        rro,
        initial,
    }
}

/// One Chebyshev step: the p-update overlapped on the `u` exchange, then
/// the local `u += p` pass — the same two full sweeps `cheby_init` /
/// `cheby_iterate` run serially.
fn cheby_step(wkr: &mut Worker, first: bool, theta: f64, alpha: f64, beta: f64) {
    wkr.overlapped_pass(
        ir::KernelId::ChebyCalcP,
        Ex::U,
        1,
        "cheby_calc_p",
        &mut |t, span| k_cheby_calc_p(t, span, first, theta, alpha, beta),
    );
    k_add_p_to_u(&mut wkr.t);
}

/// The eigenvalue-estimating CG presteps Chebyshev and PPCG share, with
/// the mid-presteps resume path: a phase-0 [`LoopState::Cg`] checkpoint
/// restores the history accumulated so far, so the estimate sees exactly
/// the alphas/betas a clean run would have.
fn presteps_phase(
    wkr: &mut Worker,
    history: &mut CgHistory,
    ckpt: Option<&CkptCtx>,
    resume: Option<&LoopState>,
) -> CgPhase {
    let cfg = wkr.config;
    let presteps = cfg.tl_ch_cg_presteps.min(cfg.tl_max_iters);
    match resume {
        Some(LoopState::Cg {
            iteration,
            rro,
            initial,
            alphas,
            betas,
        }) => {
            history.alphas = alphas.clone();
            history.betas = betas.clone();
            cg_phase(
                wkr,
                presteps,
                Some(history),
                ckpt,
                Some((*rro, *initial, *iteration)),
            )
        }
        _ => cg_phase(wkr, presteps, Some(history), ckpt, None),
    }
}

/// The Chebyshev main loop, entered fresh (after the presteps and the
/// `cheby_init` step, `start_done == 1`) or from a phase-1 checkpoint.
/// The iteration coefficients are replayed, not stored: `ChebyShift` and
/// `ChebyCoeffs` are pure functions of the eigenvalue bounds, so calling
/// `next_pair` `start_done - 1` times reproduces the resumed position's
/// coefficient stream bit-for-bit.
#[allow(clippy::too_many_arguments)]
fn cheby_main(
    wkr: &mut Worker,
    ckpt: Option<&CkptCtx>,
    mut iterations: usize,
    start_done: usize,
    initial: f64,
    eig: (f64, f64),
    budget: usize,
) -> (usize, bool) {
    let cfg = wkr.config;
    let shift = ChebyShift::from_bounds(eig.0, eig.1);
    let mut coeffs = ChebyCoeffs::new(shift);
    for _ in 1..start_done {
        coeffs.next_pair();
    }
    let mut done = start_done;
    let mut converged = false;
    while !converged && done < budget {
        if let Some(ck) = ckpt {
            ck.save(
                wkr,
                PHASE_MAIN,
                done,
                LoopState::ChebyMain {
                    iterations,
                    done,
                    initial,
                    eig,
                    budget,
                },
            );
        }
        let (alpha, beta) = coeffs.next_pair();
        cheby_step(wkr, false, shift.theta, alpha, beta);
        done += 1;
        iterations += 1;
        if done.is_multiple_of(CHECK_INTERVAL) {
            let rrn = wkr.reduce(|t, k| common::cell_norm(k, &t.r));
            if rrn.abs() <= cfg.tl_eps * initial.abs() {
                converged = true;
            }
        }
    }
    if !converged {
        // final norm check at budget exhaustion
        let rrn = wkr.reduce(|t, k| common::cell_norm(k, &t.r));
        converged = rrn.abs() <= cfg.tl_eps * initial.abs();
    }
    (iterations, converged)
}

fn solve_chebyshev(
    wkr: &mut Worker,
    ckpt: Option<&CkptCtx>,
    resume: Option<&LoopState>,
) -> (usize, bool) {
    let cfg = wkr.config;
    let presteps = cfg.tl_ch_cg_presteps.min(cfg.tl_max_iters);
    if let Some(LoopState::ChebyMain {
        iterations,
        done,
        initial,
        eig,
        budget,
    }) = resume
    {
        return cheby_main(wkr, ckpt, *iterations, *done, *initial, *eig, *budget);
    }
    let mut history = CgHistory::default();
    let pre = presteps_phase(wkr, &mut history, ckpt, resume);
    if pre.converged {
        return (pre.iterations, true);
    }
    let initial = pre.initial;
    let Some((eigmin, eigmax)) = eigenvalue_estimate(&history.alphas, &history.betas) else {
        // Degenerate spectrum: finish with CG, like the serial fallback.
        // Uncheckpointed — its keys would collide with the presteps' —
        // so a crash here replays from the last presteps cut.
        let cont = cg_phase(
            wkr,
            cfg.tl_max_iters.saturating_sub(presteps),
            Some(&mut history),
            None,
            None,
        );
        return (pre.iterations + cont.iterations, cont.converged);
    };
    let shift = ChebyShift::from_bounds(eigmin, eigmax);
    let eps_ratio = (cfg.tl_eps * initial.abs() / pre.rro.abs().max(f64::MIN_POSITIVE))
        .clamp(1e-300, 0.999_999);
    let est = estimated_iterations(shift, eps_ratio);
    let budget = (4 * est + CHECK_INTERVAL)
        .max(64)
        .min(cfg.tl_max_iters.saturating_sub(presteps));
    cheby_step(wkr, true, shift.theta, 0.0, 0.0);
    // cheby_init counts as the first Chebyshev step
    cheby_main(
        wkr,
        ckpt,
        pre.iterations + 1,
        1,
        initial,
        (eigmin, eigmax),
        budget,
    )
}

/// The PPCG outer loop, entered fresh (`start_outer == 0`) or from a
/// phase-1 checkpoint. The inner smoothing coefficients are replayed
/// from the eigenvalue bounds like the Chebyshev stream.
fn ppcg_outer(
    wkr: &mut Worker,
    ckpt: Option<&CkptCtx>,
    mut iterations: usize,
    start_outer: usize,
    mut rro: f64,
    initial: f64,
    eig: (f64, f64),
) -> (usize, bool) {
    let cfg = wkr.config;
    let presteps = cfg.tl_ch_cg_presteps.min(cfg.tl_max_iters);
    let shift = ChebyShift::from_bounds(eig.0, eig.1);
    let inner = ChebyCoeffs::take_pairs(shift, cfg.tl_ppcg_inner_steps);
    let max_outer = cfg.tl_max_iters.saturating_sub(presteps);
    let mut outer = start_outer;
    let mut converged = false;
    while !converged && outer < max_outer {
        if let Some(ck) = ckpt {
            ck.save(
                wkr,
                PHASE_MAIN,
                outer,
                LoopState::PpcgOuter {
                    iterations,
                    outer,
                    rro,
                    initial,
                    eig,
                },
            );
        }
        wkr.overlapped_pass(
            ir::KernelId::CgCalcW,
            Ex::P,
            1,
            "cg_calc_w",
            &mut |t, span| k_cg_calc_w(t, span),
        );
        let pw = wkr.reduce(|t, k| t.p[k] * t.w[k]);
        let alpha = rro / pw;
        // The serial outer loop discards this kernel's reduction — only
        // the u/r updates matter, so no allreduce here.
        k_cg_calc_ur(&mut wkr.t, alpha);
        k_sd_init(&mut wkr.t, shift.theta);
        for &(a, b) in &inner {
            wkr.overlapped_pass(
                ir::KernelId::PpcgCalcW,
                Ex::Sd,
                1,
                "ppcg_w",
                &mut |t, span| k_ppcg_w(t, span),
            );
            k_ppcg_update(&mut wkr.t, a, b);
        }
        let rrn = wkr.reduce(|t, k| common::cell_norm(k, &t.r));
        let beta = rrn / rro;
        k_cg_calc_p(&mut wkr.t, beta);
        rro = rrn;
        outer += 1;
        iterations += 1;
        if rrn.abs() <= cfg.tl_eps * initial.abs() {
            converged = true;
        }
    }
    (iterations, converged)
}

fn solve_ppcg(
    wkr: &mut Worker,
    ckpt: Option<&CkptCtx>,
    resume: Option<&LoopState>,
) -> (usize, bool) {
    let cfg = wkr.config;
    let presteps = cfg.tl_ch_cg_presteps.min(cfg.tl_max_iters);
    if let Some(LoopState::PpcgOuter {
        iterations,
        outer,
        rro,
        initial,
        eig,
    }) = resume
    {
        return ppcg_outer(wkr, ckpt, *iterations, *outer, *rro, *initial, *eig);
    }
    let mut history = CgHistory::default();
    let pre = presteps_phase(wkr, &mut history, ckpt, resume);
    if pre.converged {
        return (pre.iterations, true);
    }
    let initial = pre.initial;
    let rro = pre.rro;
    let Some((eigmin, eigmax)) = eigenvalue_estimate(&history.alphas, &history.betas) else {
        // Degenerate spectrum: uncheckpointed CG finish, as in Chebyshev.
        let cont = cg_phase(
            wkr,
            cfg.tl_max_iters.saturating_sub(presteps),
            Some(&mut history),
            None,
            None,
        );
        return (pre.iterations + cont.iterations, cont.converged);
    };
    ppcg_outer(wkr, ckpt, pre.iterations, 0, rro, initial, (eigmin, eigmax))
}

fn solve_jacobi(
    wkr: &mut Worker,
    ckpt: Option<&CkptCtx>,
    resume: Option<&LoopState>,
) -> (usize, bool) {
    let cfg = wkr.config;
    let (mut iterations, mut initial) = match resume {
        Some(LoopState::Jacobi {
            iterations,
            initial,
        }) => (*iterations, *initial),
        _ => (0, 0.0),
    };
    let mut converged = false;
    while !converged && iterations < cfg.tl_max_iters {
        if let Some(ck) = ckpt {
            ck.save(
                wkr,
                PHASE_PRIMARY,
                iterations,
                LoopState::Jacobi {
                    iterations,
                    initial,
                },
            );
        }
        // Double overlap: the u→scratch copy rides the reflective `u`
        // exchange (it reads no ghosts), then the interior sweep rides
        // the raw scratch exchange.
        wkr.overlapped_pass(
            ir::KernelId::JacobiCopy,
            Ex::U,
            1,
            "jacobi_copy",
            &mut |t, span| k_jacobi_copy(t, span),
        );
        wkr.overlapped_pass(
            ir::KernelId::JacobiSolve,
            Ex::RScratch,
            1,
            "jacobi_sweep",
            &mut |t, span| k_jacobi_sweep(t, span),
        );
        let err = wkr.reduce(|t, k| (t.u[k] - t.r[k]).abs());
        iterations += 1;
        if iterations == 1 {
            initial = err;
            if initial == 0.0 {
                converged = true; // already the exact solution
            } else if !initial.is_finite() {
                break; // poisoned inputs; the serial driver bails here too
            }
        } else if err <= cfg.tl_eps * initial {
            converged = true;
        }
    }
    (iterations, converged)
}

// ---------------------------------------------------------------------------
// the SPMD body
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn body(
    rank: &Rank,
    grid: Grid2d,
    config: &TeaConfig,
    solver: SolverKind,
    overlap: bool,
    tel: TelemetrySink,
    store: Option<&CheckpointStore>,
    resume: Option<&TileCheckpoint>,
) -> (DistributedReport, OverlapStats, ExchangeMetrics) {
    // Resuming replays from the snapshot's exact bits: the tile clone
    // already holds the step's generated fields, coefficients and the
    // solver vectors as they were at the checkpointed iteration, so the
    // start-of-run exchanges and the dead step prefix are all skipped.
    let t = match resume {
        Some(ck) => ck.tile.clone(),
        None => Tile::build(config, grid, rank.id()),
    };
    let mut wkr = Worker {
        rank,
        config,
        t,
        overlap,
        stats: OverlapStats::default(),
        metrics: ExchangeMetrics::default(),
        tel,
        clock: 0.0,
    };
    let (rx, ry) = wkr.t.geom.mesh.rx_ry(config.initial_timestep);

    if resume.is_none() {
        wkr.exchange_pair(Ex::Density, Ex::Energy, config.halo_depth);
    }

    let mut total_iterations = resume.map_or(0, |ck| ck.total_iterations);
    let mut converged_all = resume.is_none_or(|ck| ck.converged_all);
    let first_step = resume.map_or(1, |ck| ck.key.0);
    for step in first_step..=config.end_step {
        let resumed = matches!(resume, Some(ck) if ck.key.0 == step);
        if !resumed {
            k_init_u0(&mut wkr.t);
            // The coefficient build reads only density (exchanged at
            // start-of-run depth) and writes kx/ky — it can ride the
            // whole `u` exchange window.
            let mesh = &wkr.t.geom.mesh;
            let coeff_cells = ((mesh.x_cells + 1) * (mesh.y_cells + 1)) as u64;
            wkr.overlapped_full(Ex::U, 1, "init_coeffs", coeff_cells, |t| {
                k_init_coeffs(t, config.coefficient, rx, ry)
            });
        }
        let state = if resumed {
            resume.map(|ck| &ck.state)
        } else {
            None
        };
        let ctx = store.map(|s| CkptCtx {
            store: s,
            step,
            total_iterations,
            converged_all,
        });
        let (iters, converged) = match solver {
            SolverKind::ConjugateGradient => {
                let start = match state {
                    Some(LoopState::Cg {
                        iteration,
                        rro,
                        initial,
                        ..
                    }) => Some((*rro, *initial, *iteration)),
                    _ => None,
                };
                let ph = cg_phase(&mut wkr, config.tl_max_iters, None, ctx.as_ref(), start);
                (ph.iterations, ph.converged)
            }
            SolverKind::Chebyshev => solve_chebyshev(&mut wkr, ctx.as_ref(), state),
            SolverKind::Ppcg => solve_ppcg(&mut wkr, ctx.as_ref(), state),
            SolverKind::Jacobi => solve_jacobi(&mut wkr, ctx.as_ref(), state),
        };
        total_iterations += iters;
        converged_all &= converged;

        k_finalise(&mut wkr.t);
        wkr.exchange(Ex::Energy, 1);
    }

    // global field summary (carry-pipelined; exactly-ordered)
    let vol = wkr.t.geom.mesh.cell_volume();
    let global = wkr.reduce4(|t, k| common::cell_summary(k, &t.density, &t.energy, &t.u, vol));
    let report = DistributedReport {
        ranks: rank.size(),
        total_iterations,
        converged: converged_all,
        summary: Summary {
            volume: global[0],
            mass: global[1],
            internal_energy: global[2],
            temperature: global[3],
        },
    };
    (report, wkr.stats, wkr.metrics)
}

// ---------------------------------------------------------------------------
// entry points
// ---------------------------------------------------------------------------

/// Every rank must report the same global result; merge the per-rank
/// instrumentation.
fn agree(
    results: Vec<(DistributedReport, OverlapStats, ExchangeMetrics)>,
) -> (DistributedReport, OverlapStats, ExchangeMetrics) {
    let first = results[0].0.clone();
    let mut stats = OverlapStats::default();
    let mut metrics = ExchangeMetrics::default();
    for (r, s, m) in &results {
        assert_eq!(*r, first, "ranks must agree on the global result");
        stats.merge(s);
        metrics.merge(m);
    }
    (first, stats, metrics)
}

/// Resolve the deck's tile grid for `ranks` ranks (an unset deck means a
/// 1-D column strip), panicking with the typed config error on mismatch.
fn grid_for(ranks: usize, config: &TeaConfig) -> Grid2d {
    let (gx, gy) = config
        .tile_grid(ranks)
        .unwrap_or_else(|e| panic!("invalid tile grid: {e}"));
    Grid2d::new(gx, gy)
}

/// Solve the configured problem with the deck's solver on a
/// `tiles_x × tiles_y` rank grid, overlapping communication with
/// interior compute. Returns the global report (identical on every
/// rank, and bit-identical to the serial reference).
pub fn run_distributed_solver(
    tiles_x: usize,
    tiles_y: usize,
    config: &TeaConfig,
) -> DistributedReport {
    run_distributed_solver_instrumented(tiles_x, tiles_y, config, true).0
}

/// Non-overlapped variant: every exchange completes before its stencil
/// pass. Bit-identical to [`run_distributed_solver`] by construction;
/// exists so tests and benchmarks can assert and measure exactly that.
pub fn run_distributed_solver_blocking(
    tiles_x: usize,
    tiles_y: usize,
    config: &TeaConfig,
) -> DistributedReport {
    run_distributed_solver_instrumented(tiles_x, tiles_y, config, false).0
}

/// [`run_distributed_solver`] returning the merged overlap accounting
/// and per-direction exchange counters alongside the report.
pub fn run_distributed_solver_instrumented(
    tiles_x: usize,
    tiles_y: usize,
    config: &TeaConfig,
    overlap: bool,
) -> (DistributedReport, OverlapStats, ExchangeMetrics) {
    let grid = Grid2d::new(tiles_x, tiles_y);
    let solver = config.solver;
    let results = run_spmd(grid.ranks(), |rank| {
        body(
            rank,
            grid,
            config,
            solver,
            overlap,
            TelemetrySink::disabled(),
            None,
            None,
        )
    });
    agree(results)
}

/// [`run_distributed_solver`] over a fault-injected message layer: the
/// reliable transport must make the run bit-identical to the fault-free
/// one or abort with a [`FaultDiagnostic`] — never a silently wrong
/// answer (asserted by the conformance fault matrix, edge and corner
/// channels alike).
pub fn run_distributed_solver_faulty(
    tiles_x: usize,
    tiles_y: usize,
    config: &TeaConfig,
    spec: FaultSpec,
) -> Result<DistributedReport, FaultDiagnostic> {
    let grid = Grid2d::new(tiles_x, tiles_y);
    let solver = config.solver;
    let results = run_spmd_faulty(grid.ranks(), spec, |rank| {
        body(
            rank,
            grid,
            config,
            solver,
            true,
            TelemetrySink::disabled(),
            None,
            None,
        )
    })?;
    Ok(agree(results).0)
}

/// [`run_distributed_solver`] with rank 0 emitting telemetry spans on a
/// logical clock: `exchange`, `interior` and `boundary` spans per halo
/// window, so `tea-prof` can table how much traffic each solver hides.
pub fn run_distributed_solver_traced(
    tiles_x: usize,
    tiles_y: usize,
    config: &TeaConfig,
) -> (
    DistributedReport,
    OverlapStats,
    ExchangeMetrics,
    Vec<Record>,
) {
    let grid = Grid2d::new(tiles_x, tiles_y);
    let solver = config.solver;
    let (sink, collector) = TelemetrySink::collecting();
    let results = run_spmd(grid.ranks(), |rank| {
        let tel = if rank.id() == 0 {
            sink.clone()
        } else {
            TelemetrySink::disabled()
        };
        body(rank, grid, config, solver, true, tel, None, None)
    });
    let (report, stats, metrics) = agree(results);
    (report, stats, metrics, collector.records())
}

/// Solve the configured problem with CG across `ranks` tiles (the
/// deck's `tl_tiles_x`/`tl_tiles_y` grid, or a 1-D strip when unset);
/// returns the global report (identical on every rank).
pub fn run_distributed_cg(ranks: usize, config: &TeaConfig) -> DistributedReport {
    let grid = grid_for(ranks, config);
    let results = run_spmd(ranks, |rank| {
        body(
            rank,
            grid,
            config,
            SolverKind::ConjugateGradient,
            true,
            TelemetrySink::disabled(),
            None,
            None,
        )
    });
    agree(results).0
}

/// Same as [`run_distributed_cg`] but over a fault-injected message
/// layer. The reliable transport must make the run **bit-identical** to
/// the fault-free one, or abort with a [`FaultDiagnostic`] when its
/// recovery deadline expires — never return a silently wrong answer
/// (asserted by the conformance fault matrix).
pub fn run_distributed_cg_faulty(
    ranks: usize,
    config: &TeaConfig,
    spec: FaultSpec,
) -> Result<DistributedReport, FaultDiagnostic> {
    let grid = grid_for(ranks, config);
    let results = run_spmd_faulty(ranks, spec, |rank| {
        body(
            rank,
            grid,
            config,
            SolverKind::ConjugateGradient,
            true,
            TelemetrySink::disabled(),
            None,
            None,
        )
    })?;
    Ok(agree(results).0)
}

// ---------------------------------------------------------------------------
// checkpoint/restart and elastic re-decomposition
// ---------------------------------------------------------------------------

/// How many checkpoints each rank's ring keeps. Ranks run in lockstep
/// (every solver iteration has ordered allreduces), so any two ranks'
/// latest checkpoints are at most one interval apart — a ring of a few
/// entries always contains a key common to all ranks.
const CHECKPOINT_KEEP: usize = 4;

/// Checkpoint phase of the primary loop: plain CG, the CG presteps of
/// Chebyshev/PPCG, and the Jacobi sweep loop.
const PHASE_PRIMARY: u8 = 0;
/// Checkpoint phase of the post-presteps main loop: the Chebyshev
/// iteration and the PPCG outer loop.
const PHASE_MAIN: u8 = 1;

/// Checkpoint key: `(step, phase, iteration)`, ordered lexicographically
/// so "latest" means furthest through the run. Phases within a step run
/// in order, and iterations within a phase count up, so tuple order is
/// execution order.
pub type CkptKey = (usize, u8, usize);

/// The solver-loop scalars a checkpoint needs alongside the tile to
/// replay bit-exactly from its key. Everything here comes from global
/// exactly-ordered reductions (or deck constants), so every rank stores
/// identical values — which is what lets an elastic re-decomposition
/// seed a *different* number of ranks from one rank's loop state.
#[derive(Debug, Clone, PartialEq)]
enum LoopState {
    /// Plain CG or the CG presteps of Chebyshev/PPCG. `alphas`/`betas`
    /// carry the eigenvalue-estimation history accumulated so far (empty
    /// for plain CG, which keeps none).
    Cg {
        iteration: usize,
        rro: f64,
        initial: f64,
        alphas: Vec<f64>,
        betas: Vec<f64>,
    },
    /// Chebyshev main loop at `done` completed Chebyshev steps; the
    /// coefficient stream is replayed from the eigenvalue bounds.
    ChebyMain {
        iterations: usize,
        done: usize,
        initial: f64,
        eig: (f64, f64),
        budget: usize,
    },
    /// PPCG outer loop at `outer` completed outer iterations.
    PpcgOuter {
        iterations: usize,
        outer: usize,
        rro: f64,
        initial: f64,
        eig: (f64, f64),
    },
    /// Jacobi at `iterations` completed sweeps.
    Jacobi { iterations: usize, initial: f64 },
}

/// One rank's mid-solve snapshot: the complete tile (halo cells
/// included) plus the loop state needed to replay from here bit-exactly.
#[derive(Clone)]
struct TileCheckpoint {
    key: CkptKey,
    total_iterations: usize,
    converged_all: bool,
    state: LoopState,
    tile: Tile,
}

/// The eleven solver fields a tile snapshot carries, in one fixed order
/// (shared by the reassembly reader and writer).
fn tile_fields(t: &Tile) -> [&Vec<f64>; 11] {
    [
        &t.density, &t.energy, &t.u, &t.u0, &t.p, &t.r, &t.w, &t.z, &t.sd, &t.kx, &t.ky,
    ]
}

fn tile_fields_mut(t: &mut Tile) -> [&mut Vec<f64>; 11] {
    [
        &mut t.density,
        &mut t.energy,
        &mut t.u,
        &mut t.u0,
        &mut t.p,
        &mut t.r,
        &mut t.w,
        &mut t.z,
        &mut t.sd,
        &mut t.kx,
        &mut t.ky,
    ]
}

impl TileCheckpoint {
    /// Field bytes this snapshot restores into a restarted rank — the
    /// unit of the recovery log's "bytes replayed" ledger.
    fn payload_bytes(&self) -> u64 {
        let elements: usize = tile_fields(&self.tile).iter().map(|f| f.len()).sum();
        (elements * std::mem::size_of::<f64>()) as u64
    }
}

/// Shared checkpoint registry for one resilient distributed run: one
/// bounded ring of [`TileCheckpoint`]s per rank, written by the rank
/// threads mid-solve and read by the restart loop after a world dies.
pub struct CheckpointStore {
    slots: Vec<Mutex<VecDeque<TileCheckpoint>>>,
    saves: AtomicU64,
}

impl CheckpointStore {
    fn new(ranks: usize) -> Self {
        CheckpointStore {
            slots: (0..ranks).map(|_| Mutex::new(VecDeque::new())).collect(),
            saves: AtomicU64::new(0),
        }
    }

    fn save(&self, rank: usize, ck: TileCheckpoint) {
        self.saves.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.slots[rank].lock().expect("checkpoint lock");
        // A restarted attempt re-saves the same keys with identical bits
        // (the replay is deterministic); replace rather than duplicate.
        ring.retain(|c| c.key != ck.key);
        ring.push_back(ck);
        while ring.len() > CHECKPOINT_KEEP {
            ring.pop_front();
        }
    }

    /// Checkpoints written so far (re-saves of a replayed key included).
    fn saves(&self) -> u64 {
        self.saves.load(Ordering::Relaxed)
    }

    /// Every rank's ring keys, oldest first.
    fn keys(&self) -> Vec<Vec<CkptKey>> {
        self.slots
            .iter()
            .map(|slot| {
                slot.lock()
                    .expect("checkpoint lock")
                    .iter()
                    .map(|c| c.key)
                    .collect()
            })
            .collect()
    }

    /// The consistent cut a restart resumes from. `None` means no common
    /// checkpoint exists yet (restart from scratch).
    fn latest_common(&self) -> Option<CkptKey> {
        latest_common_key(&self.keys())
    }

    /// Clone rank `rank`'s checkpoint for `key`, if present.
    fn get(&self, rank: usize, key: CkptKey) -> Option<TileCheckpoint> {
        self.slots[rank]
            .lock()
            .expect("checkpoint lock")
            .iter()
            .find(|c| c.key == key)
            .cloned()
    }
}

/// The most advanced [`CkptKey`] present in **every** ring — the latest
/// consistent cut of the checkpoint rings. Pure so the property tests
/// can fuzz it directly: the result is always a member of every ring,
/// and no strictly greater key is.
pub fn latest_common_key(rings: &[Vec<CkptKey>]) -> Option<CkptKey> {
    let (first, rest) = rings.split_first()?;
    first
        .iter()
        .copied()
        .filter(|k| rest.iter().all(|ring| ring.contains(k)))
        .max()
}

// ---------------------------------------------------------------------------
// elastic re-decomposition
// ---------------------------------------------------------------------------

/// Copy `tile`'s cells into the global padded canvas at their global
/// coordinates. A tile's local padded cell `(li, lj)` sits at global
/// padded `(c0 + li, r0 + lj)` where `(c0, r0)` are its interior span
/// starts — the halo offsets cancel.
fn blit_into_global(config: &TeaConfig, global: &mut Tile, tile: &Tile, interior_only: bool) {
    let g = &tile.geom;
    let (c0, _) = tile::tile_span(config.x_cells, g.tx, g.grid.tiles_x());
    let (r0, _) = tile::tile_span(config.y_cells, g.ty, g.grid.tiles_y());
    let (lw, lh) = (g.mesh.width(), g.mesh.height());
    let (li0, li1, lj1) = (g.mesh.i0(), g.mesh.i1(), g.mesh.j1());
    let gw = global.geom.mesh.width();
    let (is, js) = if interior_only {
        (li0..li1, li0..lj1)
    } else {
        (0..lw, 0..lh)
    };
    let src = tile_fields(tile);
    for (dst, src) in tile_fields_mut(global).into_iter().zip(src) {
        for lj in js.clone() {
            for li in is.clone() {
                dst[(r0 + lj) * gw + (c0 + li)] = src[lj * lw + li];
            }
        }
    }
}

/// Reassemble the global padded fields from every surviving tile at one
/// consistent cut. Full padded blocks land first (they are the only
/// cover of the global boundary ring, where the reflective halo values
/// live), then interiors in rank order — interiors are authoritative
/// where blocks overlap. Every cell a resumed solve reads before its
/// next halo refresh ends up holding exactly the serial padded-mesh
/// value, because the exchange invariant (ghosts = serial values at the
/// same global coordinate) held when the cut was taken.
fn reassemble_global(config: &TeaConfig, tiles: &[&Tile]) -> Tile {
    let mut global = Tile::build(config, Grid2d::new(1, 1), 0);
    for t in tiles {
        blit_into_global(config, &mut global, t, false);
    }
    for t in tiles {
        blit_into_global(config, &mut global, t, true);
    }
    global
}

/// Carve rank `rank`'s tile of `grid` out of the global canvas — the
/// inverse of [`blit_into_global`], ghost cells included.
fn carve_tile(config: &TeaConfig, global: &Tile, grid: Grid2d, rank: usize) -> Tile {
    let mut t = Tile::build(config, grid, rank);
    let (c0, _) = tile::tile_span(config.x_cells, t.geom.tx, grid.tiles_x());
    let (r0, _) = tile::tile_span(config.y_cells, t.geom.ty, grid.tiles_y());
    let (lw, lh) = (t.geom.mesh.width(), t.geom.mesh.height());
    let gw = global.geom.mesh.width();
    let src = tile_fields(global);
    for (dst, src) in tile_fields_mut(&mut t).into_iter().zip(src) {
        for lj in 0..lh {
            for li in 0..lw {
                dst[lj * lw + li] = src[(r0 + lj) * gw + (c0 + li)];
            }
        }
    }
    t
}

/// Re-tile one consistent cut's checkpoints onto a smaller grid: gather
/// the surviving tile state into the global canvas, carve one fresh tile
/// per new rank, and stamp each with the cut's loop state (identical on
/// every old rank — it is all global-reduction output).
fn regrid_checkpoints(
    config: &TeaConfig,
    old: &[TileCheckpoint],
    to: Grid2d,
) -> Vec<TileCheckpoint> {
    let tiles: Vec<&Tile> = old.iter().map(|c| &c.tile).collect();
    let global = reassemble_global(config, &tiles);
    let meta = &old[0];
    (0..to.ranks())
        .map(|r| TileCheckpoint {
            key: meta.key,
            total_iterations: meta.total_iterations,
            converged_all: meta.converged_all,
            state: meta.state.clone(),
            tile: carve_tile(config, &global, to, r),
        })
        .collect()
}

/// One rung down the elastic ladder: halve the taller tile axis with
/// ceiling division, so `2x2 → 2x1 → 1x1` and `4x1 → 2x1 → 1x1`.
fn degrade(grid: Grid2d) -> Grid2d {
    let (gx, gy) = (grid.tiles_x(), grid.tiles_y());
    if gy >= gx && gy > 1 {
        Grid2d::new(gx, gy.div_ceil(2))
    } else {
        Grid2d::new(gx.div_ceil(2), gy)
    }
}

/// What one resilient distributed run did to stay alive: the recovery
/// timeline plus the counters `tea-prof --recovery` tables.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoveryLog {
    /// Every restart and regrid, in order, stamped with the timestep of
    /// the cut it resumed from (0 = restarted from scratch).
    pub events: Vec<RecoveryEvent>,
    /// World relaunches on the same tile grid.
    pub restarts: usize,
    /// Elastic re-decompositions onto a smaller grid.
    pub regrids: usize,
    /// Checkpoints written across all attempts and grid levels.
    pub checkpoints_taken: u64,
    /// Worlds lost to a transport fault (one per failed attempt).
    pub ranks_lost: usize,
    /// Checkpoint field bytes loaded into restarted worlds.
    pub replayed_bytes: u64,
    /// The tile grid the run finished on.
    pub final_grid: (usize, usize),
}

/// The self-healing driver behind every resilient entry point: restart
/// the world from the latest consistent cut up to `restart_budget` times
/// per grid level; when a level's budget is exhausted (a rank that stays
/// dead — e.g. a permanent [`mpisim::KillSpec`]), optionally gather the
/// surviving tile state and re-tile onto a smaller grid. Transient kills
/// are dropped after they fire (the node comes back); permanent kills
/// re-arm on every same-grid restart and only go away when a regrid
/// removes the dead rank from the world. Fault seeds are remixed
/// deterministically per attempt; none of this affects numerics, so any
/// recovered report is **bit-identical** to the clean run's.
#[allow(clippy::too_many_arguments)]
fn resilient_core(
    tiles_x: usize,
    tiles_y: usize,
    config: &TeaConfig,
    solver: SolverKind,
    spec: FaultSpec,
    restart_budget: usize,
    allow_regrid: bool,
    tel: &TelemetrySink,
) -> Result<(DistributedReport, RecoveryLog), FaultDiagnostic> {
    let mut grid = Grid2d::new(tiles_x, tiles_y);
    let mut carried: Option<Vec<TileCheckpoint>> = None;
    let mut armed_kill = spec.kill_rank;
    let mut log = RecoveryLog {
        final_grid: (tiles_x, tiles_y),
        ..RecoveryLog::default()
    };
    let mut attempt = 0u64; // across grid levels, for seed remixing
    let mut tick = 0.0; // driver-side event clock
    loop {
        let store = CheckpointStore::new(grid.ranks());
        let mut level_restarts = 0usize;
        let outcome = loop {
            let mut attempt_spec = spec;
            attempt_spec.kill_rank = armed_kill.filter(|k| k.rank < grid.ranks());
            if attempt > 0 {
                // Deterministic remix: a restarted transport draws a
                // fresh but reproducible fault schedule.
                attempt_spec.seed = spec.seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
            let resumes: Vec<Option<TileCheckpoint>> = match store.latest_common() {
                Some(key) => (0..grid.ranks()).map(|r| store.get(r, key)).collect(),
                None => match &carried {
                    Some(seeds) => seeds.iter().cloned().map(Some).collect(),
                    None => (0..grid.ranks()).map(|_| None).collect(),
                },
            };
            log.replayed_bytes += resumes
                .iter()
                .flatten()
                .map(TileCheckpoint::payload_bytes)
                .sum::<u64>();
            let result = run_spmd_faulty(grid.ranks(), attempt_spec, |rank| {
                let sink = if rank.id() == 0 {
                    tel.clone()
                } else {
                    TelemetrySink::disabled()
                };
                body(
                    rank,
                    grid,
                    config,
                    solver,
                    true,
                    sink,
                    Some(&store),
                    resumes[rank.id()].as_ref(),
                )
            });
            attempt += 1;
            match result {
                Ok(results) => break Ok(agree(results).0),
                Err(diag) => {
                    log.ranks_lost += 1;
                    tel.event("resilience", format_args!("world died: {diag}"), tick);
                    tick += 1.0;
                    if let Some(k) = armed_kill {
                        if !k.permanent {
                            armed_kill = None; // transient crash: the node comes back
                        }
                    }
                    if level_restarts >= restart_budget {
                        break Err(diag);
                    }
                    level_restarts += 1;
                    log.restarts += 1;
                    let cut = store
                        .latest_common()
                        .or_else(|| carried.as_ref().map(|s| s[0].key));
                    let (estep, eiter) = cut.map_or((0, 0), |k| (k.0, k.2));
                    log.events.push(RecoveryEvent {
                        step: estep,
                        trigger: SolverHealth::DistributedFault { rank: diag.rank },
                        action: RecoveryAction::Restart {
                            step: estep,
                            iteration: eiter,
                        },
                    });
                    tel.event(
                        "resilience",
                        format_args!(
                            "restart from (step {estep}, iteration {eiter}) on {}x{} tiles",
                            grid.tiles_x(),
                            grid.tiles_y()
                        ),
                        tick,
                    );
                    tick += 1.0;
                }
            }
        };
        log.checkpoints_taken += store.saves();
        match outcome {
            Ok(report) => {
                log.final_grid = (grid.tiles_x(), grid.tiles_y());
                return Ok((report, log));
            }
            Err(diag) => {
                if !(allow_regrid && grid.ranks() > 1) {
                    return Err(diag);
                }
                let to = degrade(grid);
                let source: Option<Vec<TileCheckpoint>> = match store.latest_common() {
                    Some(key) => Some(
                        (0..grid.ranks())
                            .map(|r| store.get(r, key).expect("common key present on every rank"))
                            .collect(),
                    ),
                    None => carried.take(),
                };
                let estep = source.as_ref().map_or(0, |s| s[0].key.0);
                log.events.push(RecoveryEvent {
                    step: estep,
                    trigger: SolverHealth::DistributedFault { rank: diag.rank },
                    action: RecoveryAction::Regrid {
                        from: (grid.tiles_x(), grid.tiles_y()),
                        to: (to.tiles_x(), to.tiles_y()),
                    },
                });
                tel.event(
                    "resilience",
                    format_args!(
                        "regrid {}x{} -> {}x{} on surviving state",
                        grid.tiles_x(),
                        grid.tiles_y(),
                        to.tiles_x(),
                        to.tiles_y()
                    ),
                    tick,
                );
                tick += 1.0;
                log.regrids += 1;
                carried = source.map(|old| regrid_checkpoints(config, &old, to));
                grid = to;
                // The dead node is not part of the smaller world.
                armed_kill = None;
            }
        }
    }
}

/// Self-healing distributed solve of the deck's solver on a
/// `tiles_x × tiles_y` grid over the fault-injected transport:
/// checkpoint rings every `tl_checkpoint_interval` iterations, world
/// restarts from the latest consistent cut (`tl_max_recoveries` per grid
/// level), and — when `tl_elastic_regrid` allows — re-decomposition onto
/// a smaller grid when a rank stays dead. Either the returned report is
/// bit-identical to the clean run's, or the run aborts loudly with a
/// [`FaultDiagnostic`] — never a silently wrong answer.
pub fn run_distributed_solver_resilient(
    tiles_x: usize,
    tiles_y: usize,
    config: &TeaConfig,
    spec: FaultSpec,
) -> Result<(DistributedReport, RecoveryLog), FaultDiagnostic> {
    resilient_core(
        tiles_x,
        tiles_y,
        config,
        config.solver,
        spec,
        config.tl_max_recoveries,
        config.tl_elastic_regrid,
        &TelemetrySink::disabled(),
    )
}

/// [`run_distributed_solver_resilient`] with the resilience timeline
/// traced: rank 0 emits checkpoint events on the logical clock and the
/// driver emits restart/regrid events, so `tea-prof --recovery` can
/// table the recovery story.
pub fn run_distributed_solver_resilient_traced(
    tiles_x: usize,
    tiles_y: usize,
    config: &TeaConfig,
    spec: FaultSpec,
) -> Result<(DistributedReport, RecoveryLog, Vec<Record>), FaultDiagnostic> {
    let (sink, collector) = TelemetrySink::collecting();
    let (report, log) = resilient_core(
        tiles_x,
        tiles_y,
        config,
        config.solver,
        spec,
        config.tl_max_recoveries,
        config.tl_elastic_regrid,
        &sink,
    )?;
    Ok((report, log, collector.records()))
}

/// Checkpoint-restarting distributed CG: run under the fault-injected
/// transport, checkpointing every `tl_checkpoint_interval` CG iterations
/// into a [`CheckpointStore`]; when the world dies (e.g. an injected
/// [`mpisim::KillSpec`] rank loss), relaunch it up to `max_restarts`
/// times, resuming every rank from the latest checkpoint present on
/// *all* ranks. Returns the report and the number of restarts used.
/// (The legacy fixed-grid entry point: no elastic re-decomposition.)
pub fn run_distributed_cg_resilient(
    ranks: usize,
    config: &TeaConfig,
    spec: FaultSpec,
    max_restarts: usize,
) -> Result<(DistributedReport, usize), FaultDiagnostic> {
    let grid = grid_for(ranks, config);
    let (report, log) = resilient_core(
        grid.tiles_x(),
        grid.tiles_y(),
        config,
        SolverKind::ConjugateGradient,
        spec,
        max_restarts,
        false,
        &TelemetrySink::disabled(),
    )?;
    Ok((report, log.restarts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_partition_covers_all_rows() {
        for y in [7usize, 16, 33] {
            for size in 1..=4 {
                let mut covered = 0;
                for rank in 0..size {
                    let (r0, r1) = stripe_rows(y, rank, size);
                    assert!(r0 <= r1);
                    covered += r1 - r0;
                    if rank > 0 {
                        assert_eq!(r0, stripe_rows(y, rank - 1, size).1, "contiguous stripes");
                    }
                }
                assert_eq!(covered, y);
            }
        }
    }

    #[test]
    fn one_rank_runs() {
        let mut cfg = TeaConfig::paper_problem(16);
        cfg.end_step = 1;
        cfg.tl_eps = 1.0e-10;
        let report = run_distributed_cg(1, &cfg);
        assert!(report.converged);
        assert_eq!(report.ranks, 1);
    }

    #[test]
    fn all_solvers_agree_across_grids_and_overlap_modes() {
        let mut cfg = TeaConfig::paper_problem(16);
        cfg.end_step = 1;
        cfg.tl_eps = 1.0e-10;
        for solver in [
            SolverKind::ConjugateGradient,
            SolverKind::Chebyshev,
            SolverKind::Ppcg,
            SolverKind::Jacobi,
        ] {
            cfg.solver = solver;
            let reference = run_distributed_solver(1, 1, &cfg);
            assert!(reference.converged, "{solver:?} must converge");
            for (gx, gy) in [(1usize, 2usize), (2, 1), (2, 2)] {
                let overlapped = run_distributed_solver(gx, gy, &cfg);
                let blocking = run_distributed_solver_blocking(gx, gy, &cfg);
                assert_eq!(
                    overlapped.summary, reference.summary,
                    "{solver:?} on {gx}x{gy} must be bit-identical to 1 rank"
                );
                assert_eq!(overlapped.total_iterations, reference.total_iterations);
                assert_eq!(overlapped.converged, reference.converged);
                assert_eq!(
                    blocking.summary, overlapped.summary,
                    "{solver:?} on {gx}x{gy}: overlap must not change bits"
                );
                assert_eq!(blocking.total_iterations, overlapped.total_iterations);
            }
        }
    }

    #[test]
    fn overlapped_windows_hide_traffic_and_cross_corners() {
        let mut cfg = TeaConfig::paper_problem(16);
        cfg.end_step = 1;
        cfg.tl_eps = 1.0e-10;
        let (_, stats, metrics) = run_distributed_solver_instrumented(2, 2, &cfg, true);
        assert!(stats.windows > 0);
        assert!(stats.hidden_elements > 0, "overlap must hide some traffic");
        assert!(stats.overlap_efficiency() > 0.0);
        assert!(
            metrics.corner_elements() > 0,
            "a 2x2 grid must exchange corner blocks"
        );
        assert!(metrics.edge_elements() > metrics.corner_elements());
        let (_, blocking_stats, _) = run_distributed_solver_instrumented(2, 2, &cfg, false);
        assert_eq!(blocking_stats.hidden_elements, 0);
        assert_eq!(blocking_stats.overlap_efficiency(), 0.0);
    }

    #[test]
    fn deck_tile_keys_steer_the_legacy_entry_point() {
        let mut cfg = TeaConfig::paper_problem(16);
        cfg.end_step = 1;
        cfg.tl_eps = 1.0e-10;
        let strips = run_distributed_cg(2, &cfg);
        // Splitting columns instead of rows exercises the E/W exchange
        // and the carry pipeline — the bits must not move.
        cfg.tl_tiles_x = 2;
        cfg.tl_tiles_y = 1;
        let columns = run_distributed_cg(2, &cfg);
        assert_eq!(columns, strips);
    }

    #[test]
    fn traced_run_emits_phase_spans() {
        let mut cfg = TeaConfig::paper_problem(16);
        cfg.end_step = 1;
        cfg.tl_eps = 1.0e-10;
        let (report, stats, _, records) = run_distributed_solver_traced(2, 1, &cfg);
        assert!(report.converged);
        assert!(stats.windows > 0);
        let cat_count = |want: &str| {
            records
                .iter()
                .filter(|r| matches!(r, Record::Complete { cat, .. } if *cat == want))
                .count()
        };
        assert!(cat_count("exchange") > 0);
        assert!(cat_count("interior") > 0);
        assert!(cat_count("boundary") > 0);
    }

    #[test]
    fn faulty_world_reproduces_plain_distributed_run() {
        let mut cfg = TeaConfig::paper_problem(16);
        cfg.end_step = 1;
        cfg.tl_eps = 1.0e-10;
        let plain = run_distributed_cg(2, &cfg);
        let clean =
            run_distributed_cg_faulty(2, &cfg, FaultSpec::clean(11)).expect("clean transport");
        assert_eq!(clean, plain);
        let mut spec = FaultSpec::lossy(11);
        spec.quiet = std::time::Duration::from_millis(2);
        let lossy = run_distributed_cg_faulty(2, &cfg, spec).expect("recoverable network");
        assert_eq!(lossy, plain, "recovered run must be bit-identical");
    }

    #[test]
    fn resilient_run_without_faults_uses_no_restarts() {
        let mut cfg = TeaConfig::paper_problem(16);
        cfg.end_step = 1;
        cfg.tl_eps = 1.0e-10;
        cfg.tl_checkpoint_interval = 5;
        let plain = run_distributed_cg(2, &cfg);
        let (report, restarts) =
            run_distributed_cg_resilient(2, &cfg, FaultSpec::clean(31), 2).expect("clean world");
        assert_eq!(restarts, 0);
        assert_eq!(report, plain, "checkpointing must be numerically inert");
    }

    #[test]
    fn killed_rank_replays_from_checkpoint_bit_identically() {
        let mut cfg = TeaConfig::paper_problem(16);
        cfg.end_step = 2;
        cfg.tl_eps = 1.0e-12;
        cfg.tl_checkpoint_interval = 2;
        let plain = run_distributed_cg(2, &cfg);

        let mut spec = FaultSpec::clean(37);
        spec.quiet = std::time::Duration::from_millis(2);
        spec.deadline = std::time::Duration::from_millis(250);
        // Kill rank 1 deep enough into its send schedule that both ranks
        // are mid-CG with checkpoints behind them.
        spec.kill_rank = Some(mpisim::KillSpec::transient(1, 25));
        // Without restart, the world must die loudly...
        run_distributed_cg_faulty(2, &cfg, spec).expect_err("a dead rank cannot finish");
        // ...with restart, it must finish bit-identical to the clean run.
        let (report, restarts) =
            run_distributed_cg_resilient(2, &cfg, spec, 2).expect("restart must recover");
        assert!(restarts >= 1, "the kill must have forced a restart");
        assert_eq!(
            report, plain,
            "replay from checkpoint must be bit-identical"
        );
    }

    #[test]
    fn kill_before_any_checkpoint_restarts_from_scratch() {
        let mut cfg = TeaConfig::paper_problem(16);
        cfg.end_step = 1;
        cfg.tl_eps = 1.0e-10;
        // Interval larger than the iteration count: only the iteration-0
        // checkpoint exists, so the restart is effectively from scratch —
        // still bit-identical.
        cfg.tl_checkpoint_interval = 10_000;
        let plain = run_distributed_cg(2, &cfg);
        let mut spec = FaultSpec::clean(41);
        spec.quiet = std::time::Duration::from_millis(2);
        spec.deadline = std::time::Duration::from_millis(250);
        spec.kill_rank = Some(mpisim::KillSpec::transient(0, 2));
        let (report, restarts) =
            run_distributed_cg_resilient(2, &cfg, spec, 2).expect("restart must recover");
        assert!(restarts >= 1);
        assert_eq!(report, plain);
    }

    #[test]
    fn all_solvers_replay_transient_kill_bit_identically() {
        let mut cfg = TeaConfig::paper_problem(16);
        cfg.end_step = 1;
        cfg.tl_eps = 1.0e-10;
        cfg.tl_checkpoint_interval = 2;
        for solver in [
            SolverKind::ConjugateGradient,
            SolverKind::Chebyshev,
            SolverKind::Ppcg,
            SolverKind::Jacobi,
        ] {
            cfg.solver = solver;
            let plain = run_distributed_solver(2, 2, &cfg);
            let mut spec = FaultSpec::clean(43);
            spec.quiet = std::time::Duration::from_millis(2);
            spec.deadline = std::time::Duration::from_millis(250);
            spec.kill_rank = Some(mpisim::KillSpec::transient(1, 25));
            let (report, log) = run_distributed_solver_resilient(2, 2, &cfg, spec)
                .unwrap_or_else(|d| panic!("{solver:?} must recover, got {d}"));
            assert!(log.restarts >= 1, "{solver:?}: kill must force a restart");
            assert_eq!(log.regrids, 0, "{solver:?}: a transient kill never regrids");
            assert_eq!(log.final_grid, (2, 2));
            assert!(
                log.events
                    .iter()
                    .any(|e| matches!(e.action, RecoveryAction::Restart { .. })),
                "{solver:?}: restart must be on the timeline: {:?}",
                log.events
            );
            assert_eq!(
                report, plain,
                "{solver:?}: replay from checkpoint must be bit-identical"
            );
        }
    }

    #[test]
    fn permanent_kill_regrids_onto_survivors_bit_identically() {
        let mut cfg = TeaConfig::paper_problem(16);
        // Two tighter steps: long enough that the re-armed kill fires
        // again in every same-grid restart (a resumed world replays only
        // the tail, so a short deck would finish under the kill's send
        // count and never exhaust the budget).
        cfg.end_step = 2;
        cfg.tl_eps = 1.0e-12;
        cfg.tl_checkpoint_interval = 2;
        cfg.tl_max_recoveries = 1;
        let plain = run_distributed_solver(2, 2, &cfg);
        let mut spec = FaultSpec::clean(47);
        spec.quiet = std::time::Duration::from_millis(2);
        spec.deadline = std::time::Duration::from_millis(250);
        // Rank 3 never comes back: same-grid restarts keep dying until
        // the budget forces an elastic re-decomposition.
        spec.kill_rank = Some(mpisim::KillSpec::permanent(3, 25));
        let (report, log) =
            run_distributed_solver_resilient(2, 2, &cfg, spec).expect("regrid must recover");
        assert!(log.regrids >= 1, "budget exhaustion must regrid: {log:?}");
        assert!(log.restarts >= 1);
        assert!(log.ranks_lost >= 2, "initial attempt plus restart died");
        assert!(
            log.events.iter().any(|e| matches!(
                e.action,
                RecoveryAction::Regrid {
                    from: (2, 2),
                    to: (2, 1)
                }
            )),
            "2x2 must degrade to 2x1 first: {:?}",
            log.events
        );
        assert!(log.final_grid.0 * log.final_grid.1 < 4);
        // The report's rank count legitimately shrinks with the world;
        // every numeric field must stay bit-identical to the clean run.
        assert_eq!(report.ranks, log.final_grid.0 * log.final_grid.1);
        assert_eq!(report.total_iterations, plain.total_iterations);
        assert_eq!(report.converged, plain.converged);
        assert_eq!(
            report.summary, plain.summary,
            "re-decomposed continuation must be bit-identical"
        );
    }

    #[test]
    fn permanent_kill_without_elastic_regrid_aborts_loudly() {
        let mut cfg = TeaConfig::paper_problem(16);
        cfg.end_step = 2;
        cfg.tl_eps = 1.0e-12;
        cfg.tl_checkpoint_interval = 2;
        cfg.tl_max_recoveries = 1;
        cfg.tl_elastic_regrid = false;
        let mut spec = FaultSpec::clean(47);
        spec.quiet = std::time::Duration::from_millis(2);
        spec.deadline = std::time::Duration::from_millis(250);
        spec.kill_rank = Some(mpisim::KillSpec::permanent(3, 25));
        let diag = run_distributed_solver_resilient(2, 2, &cfg, spec)
            .expect_err("a permanently dead rank with regrid off cannot finish");
        // The surfaced diagnostic is the first rank's in rank order:
        // either the kill itself or a survivor's starved deadline.
        assert!(diag.rank < 4);
    }

    #[test]
    fn resilient_solver_clean_run_has_inert_log() {
        let mut cfg = TeaConfig::paper_problem(16);
        cfg.end_step = 1;
        cfg.tl_eps = 1.0e-10;
        cfg.tl_checkpoint_interval = 3;
        cfg.solver = SolverKind::Ppcg;
        let plain = run_distributed_solver(2, 1, &cfg);
        let (report, log) = run_distributed_solver_resilient(2, 1, &cfg, FaultSpec::clean(53))
            .expect("clean world");
        assert_eq!(report, plain, "checkpointing must be numerically inert");
        assert_eq!(log.restarts, 0);
        assert_eq!(log.regrids, 0);
        assert_eq!(log.ranks_lost, 0);
        assert_eq!(log.replayed_bytes, 0);
        assert!(log.events.is_empty());
        assert_eq!(log.final_grid, (2, 1));
        assert!(log.checkpoints_taken > 0, "the rings must actually fill");
    }

    #[test]
    fn latest_common_key_is_max_of_intersection() {
        let a = vec![(1, 0, 0), (1, 0, 2), (1, 1, 1)];
        let b = vec![(1, 0, 2), (1, 1, 1), (1, 1, 3)];
        assert_eq!(latest_common_key(&[a.clone(), b.clone()]), Some((1, 1, 1)));
        assert_eq!(latest_common_key(&[a, vec![]]), None);
        assert_eq!(latest_common_key(&[]), None);
    }

    #[test]
    #[should_panic]
    fn too_many_ranks_rejected() {
        // 8 rows across 8 ranks → 1-row stripes < halo depth 2
        let mut cfg = TeaConfig::paper_problem(8);
        cfg.end_step = 1;
        let _ = run_distributed_cg(8, &cfg);
    }
}
