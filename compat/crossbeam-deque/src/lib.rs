//! Offline stand-in for `crossbeam-deque`.
//!
//! Provides `Injector`, `Worker`, `Stealer` and `Steal` with the same
//! shapes the real crate exposes, implemented with mutex-protected
//! `VecDeque`s instead of lock-free Chase-Lev deques. Semantics (LIFO
//! worker pops, FIFO steals, batched injector refills) match; only the
//! synchronisation cost differs, which is acceptable for the
//! work-stealing *schedule modelling* this workspace uses the crate for.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

/// How many tasks `steal_batch_and_pop` moves to the local queue at once
/// (the real crate takes roughly half, capped; a small fixed batch keeps
/// the schedule comparably fine-grained).
const BATCH: usize = 8;

/// Outcome of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// A task was stolen.
    Success(T),
    /// A race was lost; try again. (Never produced by this stand-in, but
    /// callers match on it.)
    Retry,
}

impl<T> Steal<T> {
    /// True when the steal yielded a task.
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    /// Extract the task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

fn locked<T>(q: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
    q.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A global FIFO task queue shared by all workers.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// Create an empty injector.
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Push a task onto the global queue.
    pub fn push(&self, task: T) {
        locked(&self.queue).push_back(task);
    }

    /// Pop one task from the global queue.
    pub fn steal(&self) -> Steal<T> {
        match locked(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Move a batch of tasks into `dest`'s local queue and pop one.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut global = locked(&self.queue);
        let Some(first) = global.pop_front() else {
            return Steal::Empty;
        };
        let mut local = locked(&dest.queue);
        for _ in 0..BATCH.min(global.len()) {
            if let Some(t) = global.pop_front() {
                local.push_back(t);
            }
        }
        Steal::Success(first)
    }

    /// True when no tasks are queued.
    pub fn is_empty(&self) -> bool {
        locked(&self.queue).is_empty()
    }
}

/// A worker's local queue. The owning worker pushes/pops LIFO; thieves
/// steal FIFO from the other end via [`Stealer`].
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// Create a LIFO worker queue (the TBB-like configuration).
    pub fn new_lifo() -> Self {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Push a task onto the owner's end.
    pub fn push(&self, task: T) {
        locked(&self.queue).push_back(task);
    }

    /// Pop from the owner's end (most recently pushed first).
    pub fn pop(&self) -> Option<T> {
        locked(&self.queue).pop_back()
    }

    /// Create a handle other threads can steal through.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }

    /// True when the local queue is empty.
    pub fn is_empty(&self) -> bool {
        locked(&self.queue).is_empty()
    }
}

/// A handle for stealing from another worker's queue.
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

impl<T> Stealer<T> {
    /// Steal from the cold end (least recently pushed first).
    pub fn steal(&self) -> Steal<T> {
        match locked(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// True when the victim's queue is empty.
    pub fn is_empty(&self) -> bool {
        locked(&self.queue).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_is_lifo_stealer_is_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn injector_batch_refills_local() {
        let inj = Injector::new();
        for i in 0..20 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        let first = inj.steal_batch_and_pop(&w);
        assert_eq!(first, Steal::Success(0));
        assert!(!w.is_empty());
        // Everything is eventually drained exactly once.
        let mut seen = vec![0];
        while let Some(t) = w.pop() {
            seen.push(t);
        }
        while let Steal::Success(t) = inj.steal() {
            seen.push(t);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_stealing_loses_nothing() {
        let inj = Arc::new(Injector::new());
        let n = 10_000;
        for i in 0..n {
            inj.push(i);
        }
        let total: usize = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let inj = Arc::clone(&inj);
                    scope.spawn(move || {
                        let w = Worker::new_lifo();
                        let mut count = 0;
                        loop {
                            let task = w.pop().or_else(|| match inj.steal_batch_and_pop(&w) {
                                Steal::Success(t) => Some(t),
                                _ => None,
                            });
                            if task.is_none() {
                                break count;
                            }
                            count += 1;
                        }
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(total, n);
    }
}
