//! The simulated clock and its counters.
//!
//! Each port owns one [`SimClock`]. Kernel launches, transfers and halo
//! exchanges add seconds and bump counters; the benchmark harness reads a
//! [`ClockSnapshot`] per run to derive runtimes (Figures 8–11) and achieved
//! bandwidth (Figure 12).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

use tea_telemetry::KernelStats;

/// Accumulated simulated time and traffic for one port instance.
///
/// Interior-mutable (`Cell`) because the orchestrating solver holds shared
/// references to the context while kernels charge time; all charging
/// happens on the orchestrator thread.
#[derive(Debug, Default)]
pub struct SimClock {
    seconds: Cell<f64>,
    kernels: Cell<u64>,
    /// Per-kernel-name count/seconds/bytes/flops profile, like the
    /// mini-app's built-in profiler but with traffic attribution.
    by_kernel: RefCell<HashMap<&'static str, KernelStats>>,
    /// Application bytes moved by kernels (model overheads excluded) —
    /// the numerator of Figure 12's achieved bandwidth.
    app_bytes: Cell<u64>,
    transfers: Cell<u64>,
    transfer_bytes: Cell<u64>,
    flops: Cell<u64>,
}

/// A copy of the clock's state at one instant.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClockSnapshot {
    pub seconds: f64,
    pub kernels: u64,
    pub app_bytes: u64,
    pub transfers: u64,
    pub transfer_bytes: u64,
    pub flops: u64,
    /// Per-kernel profile rows, sorted by kernel name so snapshots of
    /// identical runs compare (and serialize) identically.
    pub kernel_profile: Vec<(&'static str, KernelStats)>,
}

impl ClockSnapshot {
    /// Achieved application bandwidth in GB/s over the recorded interval.
    pub fn achieved_bw_gbs(&self) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        self.app_bytes as f64 / self.seconds / 1e9
    }

    /// Difference `self - earlier`, for measuring a sub-interval. The
    /// per-kernel rows are differenced by name; kernels that did not run
    /// inside the interval are dropped.
    pub fn since(&self, earlier: &ClockSnapshot) -> ClockSnapshot {
        let kernel_profile = self
            .kernel_profile
            .iter()
            .filter_map(|(name, stats)| {
                let prior = earlier
                    .kernel_profile
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, s)| *s)
                    .unwrap_or_default();
                let delta = stats.since(&prior);
                (delta.count > 0).then_some((*name, delta))
            })
            .collect();
        ClockSnapshot {
            seconds: self.seconds - earlier.seconds,
            kernels: self.kernels - earlier.kernels,
            app_bytes: self.app_bytes - earlier.app_bytes,
            transfers: self.transfers - earlier.transfers,
            transfer_bytes: self.transfer_bytes - earlier.transfer_bytes,
            flops: self.flops - earlier.flops,
            kernel_profile,
        }
    }
}

impl SimClock {
    /// A zeroed clock.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Record one kernel execution, attributing time, bytes and flops
    /// to the kernel's per-name profile row.
    pub fn charge_kernel_named(
        &self,
        name: &'static str,
        seconds: f64,
        app_bytes: u64,
        flops: u64,
    ) {
        self.by_kernel
            .borrow_mut()
            .entry(name)
            .or_default()
            .charge(seconds, app_bytes, flops);
        self.charge_kernel(seconds, app_bytes, flops);
    }

    /// Per-kernel profile, sorted by descending time (name tiebreak, so
    /// the ordering is total and deterministic).
    pub fn kernel_profile(&self) -> Vec<(&'static str, KernelStats)> {
        let mut rows: Vec<(&'static str, KernelStats)> = self
            .by_kernel
            .borrow()
            .iter()
            .map(|(k, s)| (*k, *s))
            .collect();
        rows.sort_by(|a, b| {
            b.1.seconds
                .partial_cmp(&a.1.seconds)
                .expect("finite times")
                .then_with(|| a.0.cmp(b.0))
        });
        rows
    }

    /// Record one kernel execution (unnamed).
    pub fn charge_kernel(&self, seconds: f64, app_bytes: u64, flops: u64) {
        debug_assert!(seconds >= 0.0 && seconds.is_finite());
        self.seconds.set(self.seconds.get() + seconds);
        self.kernels.set(self.kernels.get() + 1);
        self.app_bytes.set(self.app_bytes.get() + app_bytes);
        self.flops.set(self.flops.get() + flops);
    }

    /// Record one host↔device transfer.
    pub fn charge_transfer(&self, seconds: f64, bytes: u64) {
        debug_assert!(seconds >= 0.0 && seconds.is_finite());
        self.seconds.set(self.seconds.get() + seconds);
        self.transfers.set(self.transfers.get() + 1);
        self.transfer_bytes.set(self.transfer_bytes.get() + bytes);
    }

    /// Add raw seconds (solver-side bookkeeping such as host maths).
    pub fn charge_host(&self, seconds: f64) {
        debug_assert!(seconds >= 0.0 && seconds.is_finite());
        self.seconds.set(self.seconds.get() + seconds);
    }

    /// Simulated seconds elapsed.
    pub fn seconds(&self) -> f64 {
        self.seconds.get()
    }

    /// Copy out all counters, the per-kernel profile included.
    pub fn snapshot(&self) -> ClockSnapshot {
        let mut kernel_profile: Vec<(&'static str, KernelStats)> = self
            .by_kernel
            .borrow()
            .iter()
            .map(|(k, s)| (*k, *s))
            .collect();
        kernel_profile.sort_by(|a, b| a.0.cmp(b.0));
        ClockSnapshot {
            seconds: self.seconds.get(),
            kernels: self.kernels.get(),
            app_bytes: self.app_bytes.get(),
            transfers: self.transfers.get(),
            transfer_bytes: self.transfer_bytes.get(),
            flops: self.flops.get(),
            kernel_profile,
        }
    }

    /// Zero everything.
    pub fn reset(&self) {
        self.by_kernel.borrow_mut().clear();
        self.seconds.set(0.0);
        self.kernels.set(0);
        self.app_bytes.set(0);
        self.transfers.set(0);
        self.transfer_bytes.set(0);
        self.flops.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation() {
        let c = SimClock::new();
        c.charge_kernel(0.5, 1000, 10);
        c.charge_kernel(0.25, 500, 5);
        c.charge_transfer(0.1, 64);
        c.charge_host(0.05);
        let s = c.snapshot();
        assert!((s.seconds - 0.9).abs() < 1e-12);
        assert_eq!(s.kernels, 2);
        assert_eq!(s.app_bytes, 1500);
        assert_eq!(s.transfers, 1);
        assert_eq!(s.transfer_bytes, 64);
        assert_eq!(s.flops, 15);
    }

    #[test]
    fn achieved_bandwidth() {
        let c = SimClock::new();
        c.charge_kernel(2.0, 30_000_000_000, 0);
        assert!((c.snapshot().achieved_bw_gbs() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn empty_clock_bandwidth_is_zero() {
        assert_eq!(ClockSnapshot::default().achieved_bw_gbs(), 0.0);
    }

    #[test]
    fn interval_measurement() {
        let c = SimClock::new();
        c.charge_kernel(1.0, 100, 1);
        let t0 = c.snapshot();
        c.charge_kernel(0.5, 50, 1);
        let d = c.snapshot().since(&t0);
        assert!((d.seconds - 0.5).abs() < 1e-12);
        assert_eq!(d.kernels, 1);
        assert_eq!(d.app_bytes, 50);
    }

    #[test]
    fn named_charges_build_a_full_profile() {
        let c = SimClock::new();
        c.charge_kernel_named("cg_calc_w", 0.2, 600, 10);
        c.charge_kernel_named("halo", 0.1, 100, 0);
        c.charge_kernel_named("cg_calc_w", 0.2, 600, 10);
        // live profile: time-ordered, cg_calc_w first
        let live = c.kernel_profile();
        assert_eq!(live[0].0, "cg_calc_w");
        assert_eq!(live[0].1.count, 2);
        assert_eq!(live[0].1.bytes, 1200);
        assert_eq!(live[0].1.flops, 20);
        // snapshot profile: name-ordered, carried on the snapshot
        let snap = c.snapshot();
        let names: Vec<&str> = snap.kernel_profile.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["cg_calc_w", "halo"]);
        assert!((snap.kernel_profile[0].1.seconds - 0.4).abs() < 1e-12);
    }

    #[test]
    fn interval_profile_diffs_per_kernel() {
        let c = SimClock::new();
        c.charge_kernel_named("a", 1.0, 100, 1);
        c.charge_kernel_named("b", 1.0, 100, 1);
        let t0 = c.snapshot();
        c.charge_kernel_named("b", 0.5, 50, 2);
        c.charge_kernel_named("c", 0.25, 25, 3);
        let d = c.snapshot().since(&t0);
        // `a` did not run in the interval and is dropped
        let names: Vec<&str> = d.kernel_profile.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["b", "c"]);
        assert_eq!(d.kernel_profile[0].1.count, 1);
        assert_eq!(d.kernel_profile[0].1.bytes, 50);
        assert_eq!(d.kernel_profile[1].1.flops, 3);
    }

    #[test]
    fn reset_zeroes() {
        let c = SimClock::new();
        c.charge_kernel(1.0, 1, 1);
        c.reset();
        assert_eq!(c.snapshot(), ClockSnapshot::default());
    }
}
