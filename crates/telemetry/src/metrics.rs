//! Per-kernel metric accumulation: the unit Figure 12 decomposes to.

/// Accumulated cost of one named kernel: launch count, simulated
/// seconds, application bytes moved, floating-point operations and
/// simulated joules drawn (zero until a power model charges energy).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelStats {
    pub count: u64,
    pub seconds: f64,
    pub bytes: u64,
    pub flops: u64,
    pub joules: f64,
}

impl KernelStats {
    /// Fold one launch in.
    pub fn charge(&mut self, seconds: f64, bytes: u64, flops: u64, joules: f64) {
        self.count += 1;
        self.seconds += seconds;
        self.bytes += bytes;
        self.flops += flops;
        self.joules += joules;
    }

    /// Achieved application bandwidth in GB/s over this kernel's
    /// accumulated time — the per-kernel numerator of Figure 12.
    pub fn bw_gbs(&self) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        self.bytes as f64 / self.seconds / 1e9
    }

    /// Average power draw in watts over this kernel's accumulated time.
    pub fn avg_watts(&self) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        self.joules / self.seconds
    }

    /// Difference `self - earlier` (counters are monotone, so the
    /// earlier stats of the same kernel are always component-wise ≤).
    pub fn since(&self, earlier: &KernelStats) -> KernelStats {
        KernelStats {
            count: self.count - earlier.count,
            seconds: self.seconds - earlier.seconds,
            bytes: self.bytes - earlier.bytes,
            flops: self.flops - earlier.flops,
            joules: self.joules - earlier.joules,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates_all_five_counters() {
        let mut s = KernelStats::default();
        s.charge(0.5, 1_000_000_000, 10, 100.0);
        s.charge(1.5, 29_000_000_000, 20, 300.0);
        assert_eq!(s.count, 2);
        assert!((s.seconds - 2.0).abs() < 1e-12);
        assert_eq!(s.bytes, 30_000_000_000);
        assert_eq!(s.flops, 30);
        assert!((s.joules - 400.0).abs() < 1e-12);
        assert!((s.bw_gbs() - 15.0).abs() < 1e-9);
        assert!((s.avg_watts() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn since_subtracts() {
        let mut s = KernelStats::default();
        s.charge(1.0, 100, 1, 25.0);
        let t0 = s;
        s.charge(0.5, 50, 2, 12.5);
        let d = s.since(&t0);
        assert_eq!(d.count, 1);
        assert_eq!(d.bytes, 50);
        assert_eq!(d.flops, 2);
        assert!((d.seconds - 0.5).abs() < 1e-12);
        assert!((d.joules - 12.5).abs() < 1e-12);
    }

    #[test]
    fn since_is_bit_exact_on_dyadic_charges() {
        // Dyadic values add and subtract without rounding, so interval
        // deltas must compose exactly at the bit level.
        let mut s = KernelStats::default();
        s.charge(0.25, 100, 1, 4.0);
        let t0 = s;
        s.charge(0.5, 50, 2, 8.0);
        let d = s.since(&t0);
        assert_eq!(d.seconds.to_bits(), 0.5f64.to_bits());
        assert_eq!(d.joules.to_bits(), 8.0f64.to_bits());
    }

    #[test]
    fn idle_kernel_has_zero_bandwidth_and_power() {
        assert_eq!(KernelStats::default().bw_gbs(), 0.0);
        assert_eq!(KernelStats::default().avg_watts(), 0.0);
    }

    #[test]
    fn zero_joule_charges_keep_energy_at_zero() {
        let mut s = KernelStats::default();
        s.charge(1.0, 100, 1, 0.0);
        s.charge(2.0, 200, 2, 0.0);
        assert_eq!(s.joules, 0.0);
        assert_eq!(s.avg_watts(), 0.0);
    }
}
