//! Seeded fault injection for the message layer.
//!
//! A [`FaultSpec`] gives per-message probabilities of the four classic
//! network faults — drop, duplicate, reorder, delay — drawn from a
//! deterministic per-channel stream: channel (from → to) uses its own
//! splitmix64 state seeded from (`seed`, from, to) and advances it once
//! per data message, so the fault pattern depends only on the seed and
//! each channel's message sequence, never on thread scheduling.
//!
//! Faults apply to *user* traffic only. Collective tags (the reserved
//! band at the top of the tag space) and the control/retransmission
//! traffic of the reliable transport in [`crate::world`] are exempt —
//! the usual fault-model assumption that the recovery channel is
//! eventually reliable. The transport guarantees that a faulty world
//! either reproduces the fault-free answers bit-for-bit (duplicates
//! deduplicated, reorders parked, drops NACK-retransmitted) or fails
//! loudly with a [`FaultDiagnostic`](crate::world::FaultDiagnostic)
//! when its recovery deadline expires — never a silently wrong answer.

use std::time::Duration;

/// What to do with one outbound data message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Action {
    /// Deliver normally.
    Deliver,
    /// Never deliver (the receiver's NACK path must recover it).
    Drop,
    /// Deliver two copies (the receiver must deduplicate).
    Duplicate,
    /// Hold the message behind the next send on the same channel.
    Reorder,
    /// Hold the message behind the next two sends on the same channel.
    Delay,
}

/// Kill one rank mid-run: the rank panics with a structured
/// [`crate::world::FaultDiagnostic`] the moment it has issued
/// `after_sends` data sends — modelling a node loss at a deterministic
/// point in the communication schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    /// Rank to lose.
    pub rank: usize,
    /// Number of data sends the rank completes before dying.
    pub after_sends: u64,
}

/// Seeded fault-injection parameters for one SPMD world.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Stream seed; equal seeds give identical fault patterns.
    pub seed: u64,
    /// Probability a data message is dropped.
    pub drop: f64,
    /// Probability a data message is delivered twice.
    pub duplicate: f64,
    /// Probability a data message is held behind the next one.
    pub reorder: f64,
    /// Probability a data message is held behind the next two.
    pub delay: f64,
    /// Quiet period a blocked receive waits before its *first* NACK;
    /// subsequent waits grow by `backoff` per retry (capped at
    /// `backoff_cap`).
    pub quiet: Duration,
    /// Total budget for one blocked receive; past it the rank aborts
    /// with a structured [`crate::world::FaultDiagnostic`].
    pub deadline: Duration,
    /// Maximum NACK retries one blocked receive may issue before it
    /// aborts — the loud-failure cap that stops a dead channel from
    /// being retried until the deadline on every receive.
    pub max_retries: u32,
    /// Multiplicative factor on the wait between retries (exponential
    /// backoff; 1.0 restores the old fixed-interval behaviour).
    pub backoff: f64,
    /// Upper bound on a single backoff wait.
    pub backoff_cap: Duration,
    /// A receiver acknowledges each source channel after this many
    /// accepted messages, letting the sender prune its retransmit
    /// history. 0 disables acks (unbounded history, the old behaviour).
    pub ack_interval: u64,
    /// Optional injected rank loss.
    pub kill_rank: Option<KillSpec>,
}

impl FaultSpec {
    /// No faults at all — the reliable transport running over a perfect
    /// network (the baseline the fault matrix compares against).
    pub fn clean(seed: u64) -> Self {
        FaultSpec {
            seed,
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            delay: 0.0,
            quiet: Duration::from_millis(25),
            deadline: Duration::from_secs(5),
            max_retries: 64,
            backoff: 2.0,
            backoff_cap: Duration::from_millis(200),
            ack_interval: 16,
            kill_rank: None,
        }
    }

    /// A moderately hostile network: every fault class enabled.
    pub fn lossy(seed: u64) -> Self {
        FaultSpec {
            drop: 0.05,
            duplicate: 0.05,
            reorder: 0.10,
            delay: 0.05,
            ..FaultSpec::clean(seed)
        }
    }

    /// True when every fault probability is zero and no rank is killed.
    pub fn is_clean(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.reorder == 0.0
            && self.delay == 0.0
            && self.kill_rank.is_none()
    }

    /// The wait before retry number `attempt` (0-based) of a blocked
    /// receive: `quiet · backoff^attempt`, capped at `backoff_cap`. A
    /// pure function of the spec, so the schedule is deterministic —
    /// equal specs always wait the same amounts in the same order.
    pub fn backoff_schedule(&self, attempt: u32) -> Duration {
        let factor = self.backoff.max(1.0).powi(attempt.min(63) as i32);
        let scaled = self.quiet.as_secs_f64() * factor;
        Duration::from_secs_f64(scaled.min(self.backoff_cap.as_secs_f64()).max(0.0))
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// One channel's deterministic decision stream.
#[derive(Debug, Clone)]
pub(crate) struct ChannelRng {
    state: u64,
}

impl ChannelRng {
    pub(crate) fn new(seed: u64, from: usize, to: usize) -> Self {
        let mut state = seed
            ^ (from as u64).wrapping_mul(0xA076_1D64_78BD_642F)
            ^ (to as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB);
        // One warm-up draw decorrelates nearby (from, to) seeds.
        let _ = splitmix64(&mut state);
        ChannelRng { state }
    }

    /// Decide the fate of the channel's next data message.
    pub(crate) fn decide(&mut self, spec: &FaultSpec) -> Action {
        let r = (splitmix64(&mut self.state) >> 11) as f64 / (1u64 << 53) as f64;
        let mut edge = spec.drop;
        if r < edge {
            return Action::Drop;
        }
        edge += spec.duplicate;
        if r < edge {
            return Action::Duplicate;
        }
        edge += spec.reorder;
        if r < edge {
            return Action::Reorder;
        }
        edge += spec.delay;
        if r < edge {
            return Action::Delay;
        }
        Action::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_spec_always_delivers() {
        let spec = FaultSpec::clean(7);
        assert!(spec.is_clean());
        let mut rng = ChannelRng::new(spec.seed, 0, 1);
        for _ in 0..1000 {
            assert_eq!(rng.decide(&spec), Action::Deliver);
        }
    }

    #[test]
    fn decision_stream_is_seed_deterministic() {
        let spec = FaultSpec::lossy(99);
        let stream = |seed: u64| {
            let spec = FaultSpec { seed, ..spec };
            let mut rng = ChannelRng::new(seed, 1, 0);
            (0..256).map(|_| rng.decide(&spec)).collect::<Vec<_>>()
        };
        assert_eq!(stream(99), stream(99));
        assert_ne!(stream(99), stream(100));
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        let spec = FaultSpec {
            quiet: Duration::from_millis(5),
            backoff: 2.0,
            backoff_cap: Duration::from_millis(40),
            ..FaultSpec::lossy(42)
        };
        let schedule = |spec: &FaultSpec| -> Vec<Duration> {
            (0..8).map(|a| spec.backoff_schedule(a)).collect()
        };
        // Pure function of the spec: same spec, same schedule, every time.
        assert_eq!(schedule(&spec), schedule(&spec));
        assert_eq!(schedule(&spec), schedule(&FaultSpec { ..spec }));
        // Exponential up to the cap, then flat.
        assert_eq!(
            schedule(&spec),
            vec![
                Duration::from_millis(5),
                Duration::from_millis(10),
                Duration::from_millis(20),
                Duration::from_millis(40),
                Duration::from_millis(40),
                Duration::from_millis(40),
                Duration::from_millis(40),
                Duration::from_millis(40),
            ]
        );
        // Waits never shrink as attempts grow.
        for w in schedule(&spec).windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn backoff_of_one_restores_fixed_interval() {
        let spec = FaultSpec {
            backoff: 1.0,
            ..FaultSpec::clean(0)
        };
        for attempt in 0..10 {
            assert_eq!(spec.backoff_schedule(attempt), spec.quiet);
        }
    }

    #[test]
    fn kill_spec_makes_a_spec_unclean() {
        let mut spec = FaultSpec::clean(1);
        assert!(spec.is_clean());
        spec.kill_rank = Some(KillSpec {
            rank: 1,
            after_sends: 10,
        });
        assert!(!spec.is_clean());
    }

    #[test]
    fn lossy_spec_hits_every_fault_class() {
        let spec = FaultSpec::lossy(3);
        let mut rng = ChannelRng::new(spec.seed, 0, 1);
        let decisions: Vec<Action> = (0..4000).map(|_| rng.decide(&spec)).collect();
        for want in [
            Action::Deliver,
            Action::Drop,
            Action::Duplicate,
            Action::Reorder,
            Action::Delay,
        ] {
            assert!(decisions.contains(&want), "{want:?} never drawn");
        }
        let delivered = decisions.iter().filter(|a| **a == Action::Deliver).count();
        assert!(
            delivered > 2400,
            "deliver rate implausibly low: {delivered}"
        );
    }
}
