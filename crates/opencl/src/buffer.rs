//! Device buffers.

use crate::platform::Context;

/// A device-resident memory object (`cl_mem`). The storage lives host-side
//  because execution is functional, but semantically it belongs to the
//  device: host code must go through the command queue's explicit
//  `enqueue_read/write_buffer` operations to touch it.
#[derive(Debug, Clone, PartialEq)]
pub struct Buffer<T> {
    data: Vec<T>,
}

impl<T: Copy + Default> Buffer<T> {
    /// `clCreateBuffer`: allocate `len` elements on the context's device.
    pub fn new(_context: &Context, len: usize) -> Self {
        Buffer {
            data: vec![T::default(); len],
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes, for transfer costing.
    pub fn bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<T>()) as u64
    }

    /// Kernel-argument view: the device-side contents as read by a kernel
    /// bound to this buffer. Host code outside a kernel must use the
    /// queue's `enqueue_read_buffer` instead (that is what gets charged
    /// as a PCIe transfer).
    pub fn arg_view(&self) -> &[T] {
        &self.data
    }

    /// Mutable kernel-argument view (the buffer as a `__global` output).
    pub fn arg_view_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    pub(crate) fn device_data(&self) -> &[T] {
        &self.data
    }

    pub(crate) fn device_data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

/// Kernel-side access: a launched kernel receives `&[f64]` / mutable
/// access through [`crate::queue::CommandQueue::enqueue_nd_range`]'s
/// argument binding, so this module only exposes the raw views crate-
/// internally.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{Context, Platform};
    use simdev::devices;

    fn ctx() -> Context {
        Context::new(
            Platform::list()[0]
                .devices(&[devices::gpu_k20x()])
                .remove(0),
        )
    }

    #[test]
    fn allocation_is_zeroed() {
        let buf: Buffer<f64> = Buffer::new(&ctx(), 128);
        assert_eq!(buf.len(), 128);
        assert_eq!(buf.bytes(), 1024);
        assert!(buf.device_data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn device_mutation_visible() {
        let mut buf: Buffer<f64> = Buffer::new(&ctx(), 4);
        buf.device_data_mut()[2] = 5.0;
        assert_eq!(buf.device_data()[2], 5.0);
    }
}
