//! The golden-run registry: committed bit-exact run summaries for the
//! deck × solver × port matrix, plus distributed-CG rows for the mpisim
//! rank matrix.
//!
//! Each registry line stores a run's iteration count, convergence flag
//! and the four `field_summary` integrals as raw `f64` bit patterns
//! (`0x…` hex, via [`tea_core::compare::hex_bits`]), so a comparison is
//! exact by construction — there is no tolerance anywhere. The committed
//! files live in `crates/conformance/goldens/` and are regenerated with
//! `cargo run -p tea-conformance --bin tea-golden -- --bless`.
//!
//! Because every port reduces with row-ordered partials, the same file
//! must verify under any `PARPOOL_THREADS` (CI checks 1, 2 and 4) and
//! any mpisim rank count — thread- or rank-dependent bits are a bug the
//! registry turns into a one-line diff.

use std::fmt::Write as _;
use std::path::PathBuf;

use tea_core::compare::hex_bits;
use tea_core::config::SolverKind;
use tea_core::summary::Summary;
use tealeaf::distributed::{run_distributed_cg, run_distributed_solver};
use tealeaf::run_simulation;

use crate::matrix::{
    deck_config, model_name, natural_device, GOLDEN_GRIDS, GOLDEN_PORTS, GOLDEN_RANKS,
    GOLDEN_SOLVERS,
};

/// One golden row: a (solver, port) run's bit-exact outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenEntry {
    /// Solver short name (`cg`, `chebyshev`, `ppcg`, `jacobi`).
    pub solver: String,
    /// Port command-line name, or `mpisim-<ranks>` for distributed rows.
    pub port: String,
    pub iterations: usize,
    pub converged: bool,
    /// `volume, mass, internal_energy, temperature` as raw bits.
    pub bits: [u64; 4],
}

impl GoldenEntry {
    fn from_run(
        solver: SolverKind,
        port: String,
        iterations: usize,
        converged: bool,
        s: Summary,
    ) -> Self {
        GoldenEntry {
            solver: solver.name().to_string(),
            port,
            iterations,
            converged,
            bits: [
                s.volume.to_bits(),
                s.mass.to_bits(),
                s.internal_energy.to_bits(),
                s.temperature.to_bits(),
            ],
        }
    }

    fn render(&self) -> String {
        format!(
            "{} {} {} {} {} {} {} {}",
            self.solver,
            self.port,
            self.iterations,
            self.converged,
            hex_bits(f64::from_bits(self.bits[0])),
            hex_bits(f64::from_bits(self.bits[1])),
            hex_bits(f64::from_bits(self.bits[2])),
            hex_bits(f64::from_bits(self.bits[3])),
        )
    }
}

/// Run the full matrix for one deck and return its golden rows:
/// every port × every solver, distributed CG at 1/2/4 ranks (strips),
/// then every solver on the 2-D tile grids with overlapped exchange.
pub fn compute_goldens(deck_name: &str, deck_text: &str) -> Vec<GoldenEntry> {
    let base = deck_config(deck_name, deck_text);
    let mut entries = Vec::new();
    for solver in GOLDEN_SOLVERS {
        let mut cfg = base.clone();
        cfg.solver = solver;
        for port in GOLDEN_PORTS {
            let report = run_simulation(port, &natural_device(port), &cfg)
                .unwrap_or_else(|e| panic!("{deck_name}/{solver}/{port:?}: {e}"));
            entries.push(GoldenEntry::from_run(
                solver,
                model_name(port).to_string(),
                report.total_iterations,
                report.converged,
                report.summary,
            ));
        }
    }
    let mut cfg = base.clone();
    cfg.solver = SolverKind::ConjugateGradient;
    for ranks in GOLDEN_RANKS {
        let report = run_distributed_cg(ranks, &cfg);
        entries.push(GoldenEntry::from_run(
            SolverKind::ConjugateGradient,
            format!("mpisim-{ranks}"),
            report.total_iterations,
            report.converged,
            report.summary,
        ));
    }
    for solver in GOLDEN_SOLVERS {
        let mut cfg = base.clone();
        cfg.solver = solver;
        for (gx, gy) in GOLDEN_GRIDS {
            let report = run_distributed_solver(gx, gy, &cfg);
            entries.push(GoldenEntry::from_run(
                solver,
                format!("mpisim-{gx}x{gy}"),
                report.total_iterations,
                report.converged,
                report.summary,
            ));
        }
    }
    entries
}

/// Serialize golden rows to the committed registry format.
pub fn render_registry(deck_name: &str, entries: &[GoldenEntry]) -> String {
    let mut out = String::new();
    writeln!(out, "# tea-conformance golden registry v1").unwrap();
    writeln!(out, "# deck: {deck_name}").unwrap();
    writeln!(
        out,
        "# solver port iterations converged volume mass internal_energy temperature (f64 bits)"
    )
    .unwrap();
    for e in entries {
        writeln!(out, "{}", e.render()).unwrap();
    }
    out
}

/// Parse a committed registry file back into rows.
pub fn parse_registry(text: &str) -> Result<Vec<GoldenEntry>, String> {
    let mut entries = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 8 {
            return Err(format!(
                "line {}: expected 8 fields, got {}",
                ln + 1,
                fields.len()
            ));
        }
        let parse_bits = |s: &str| -> Result<u64, String> {
            s.strip_prefix("0x")
                .and_then(|h| u64::from_str_radix(h, 16).ok())
                .ok_or_else(|| format!("line {}: bad bit pattern '{s}'", ln + 1))
        };
        entries.push(GoldenEntry {
            solver: fields[0].to_string(),
            port: fields[1].to_string(),
            iterations: fields[2]
                .parse()
                .map_err(|_| format!("line {}: bad iteration count", ln + 1))?,
            converged: fields[3]
                .parse()
                .map_err(|_| format!("line {}: bad converged flag", ln + 1))?,
            bits: [
                parse_bits(fields[4])?,
                parse_bits(fields[5])?,
                parse_bits(fields[6])?,
                parse_bits(fields[7])?,
            ],
        });
    }
    Ok(entries)
}

/// Compare a freshly computed matrix against a committed registry;
/// returns one message per mismatching, missing or extra row.
pub fn diff_registries(expected: &[GoldenEntry], actual: &[GoldenEntry]) -> Vec<String> {
    let mut problems = Vec::new();
    for e in expected {
        match actual
            .iter()
            .find(|a| a.solver == e.solver && a.port == e.port)
        {
            None => problems.push(format!("missing run {}:{}", e.solver, e.port)),
            Some(a) if a != e => problems.push(format!(
                "{}:{} drifted — golden ({}) vs run ({})",
                e.solver,
                e.port,
                e.render(),
                a.render()
            )),
            Some(_) => {}
        }
    }
    for a in actual {
        if !expected
            .iter()
            .any(|e| e.solver == a.solver && e.port == a.port)
        {
            problems.push(format!("unexpected extra run {}:{}", a.solver, a.port));
        }
    }
    problems
}

/// Directory the committed golden files live in.
pub fn goldens_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/goldens"))
}

/// Path of one deck's committed registry file.
pub fn golden_path(deck_name: &str) -> PathBuf {
    goldens_dir().join(format!("{deck_name}.golden"))
}

/// Verify one deck's committed registry against a fresh run of the full
/// matrix. `Err` carries one line per divergence.
pub fn check_deck(deck_name: &str, deck_text: &str) -> Result<usize, Vec<String>> {
    let path = golden_path(deck_name);
    let committed = std::fs::read_to_string(&path).map_err(|e| {
        vec![format!(
            "cannot read {}: {e} (run --bless first)",
            path.display()
        )]
    })?;
    let expected = parse_registry(&committed).map_err(|e| vec![e])?;
    let actual = compute_goldens(deck_name, deck_text);
    let problems = diff_registries(&expected, &actual);
    if problems.is_empty() {
        Ok(expected.len())
    } else {
        Err(problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<GoldenEntry> {
        vec![
            GoldenEntry {
                solver: "cg".into(),
                port: "serial".into(),
                iterations: 42,
                converged: true,
                bits: [
                    1.0f64.to_bits(),
                    2.5f64.to_bits(),
                    (-0.0f64).to_bits(),
                    f64::MIN_POSITIVE.to_bits(),
                ],
            },
            GoldenEntry {
                solver: "cg".into(),
                port: "mpisim-4".into(),
                iterations: 42,
                converged: true,
                bits: [0, 1, 2, 3],
            },
        ]
    }

    #[test]
    fn registry_round_trips_bit_exactly() {
        let entries = sample();
        let text = render_registry("sample", &entries);
        let back = parse_registry(&text).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn diff_catches_drift_missing_and_extra() {
        let golden = sample();
        let mut drifted = sample();
        drifted[0].bits[3] ^= 1; // one ulp of temperature
        let problems = diff_registries(&golden, &drifted);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("drifted"), "{}", problems[0]);

        let problems = diff_registries(&golden, &golden[..1]);
        assert!(problems.iter().any(|p| p.contains("missing")));
        let problems = diff_registries(&golden[..1], &golden);
        assert!(problems.iter().any(|p| p.contains("extra")));
    }

    #[test]
    fn malformed_registry_rejected() {
        assert!(parse_registry("cg serial 1 true 0x0 0x0 0x0").is_err());
        assert!(parse_registry("cg serial one true 0x0 0x0 0x0 0x0").is_err());
        assert!(parse_registry("cg serial 1 true 0xZZ 0x0 0x0 0x0").is_err());
        assert!(parse_registry("# only comments\n\n").unwrap().is_empty());
    }
}
