//! # opencl-rs
//!
//! A Rust analogue of the OpenCL host API as the paper's port used it
//! (§2.5, §3.6). OpenCL "exposed more complexity than the other models,
//! and also required more boilerplate code to handle the abstract model" —
//! that boilerplate is reproduced deliberately: platforms must be queried,
//! a context created, a command queue built, buffers allocated against the
//! context, kernels created with a declared argument count and every
//! argument set before an `enqueue_nd_range` will accept them.
//!
//! Reductions follow §3.6: "they have to be manually written" — the
//! [`queue::CommandQueue::enqueue_reduce`] helper is a two-pass
//! work-group-partials-then-final-pass scheme and charges **two** kernel
//! launches, which is the cost structure that feeds the CG anomalies on
//! offload devices.
//!
//! ## Example
//!
//! ```
//! use opencl_rs::{Buffer, CommandQueue, Context, Kernel, NdRange, Platform};
//! use parpool::SerialExec;
//! use simdev::{devices, KernelProfile, ModelProfile, SimContext};
//!
//! let platform = Platform::list().remove(0);
//! let device = platform.devices(&[devices::gpu_k20x()]).remove(0);
//! let cl = Context::new(device);
//! let sim = SimContext::new(devices::gpu_k20x(), ModelProfile::ideal("OpenCL"), vec![], 0);
//! let queue = CommandQueue::new(&cl, &sim, &SerialExec);
//!
//! let mut buf = Buffer::new(&cl, 64);
//! queue.enqueue_write_buffer(&mut buf, &vec![3.0; 64]);
//! let kernel = Kernel::create("dot", 1);
//! kernel.set_arg(0);
//! let profile = KernelProfile::reduction("dot", 64, 1, 1);
//! let data = buf.arg_view().to_vec();
//! let (sum, _event) = queue.enqueue_reduce(&kernel, &profile, 8, &|g| {
//!     data[g * 8..(g + 1) * 8].iter().sum()
//! });
//! assert_eq!(sum, 192.0);
//! ```

pub mod buffer;
pub mod platform;
pub mod queue;

pub use buffer::Buffer;
pub use platform::{ClDevice, Context, Platform};
pub use queue::{CommandQueue, Event, Kernel, NdRange};
