//! Command queues, kernels, NDRange launches and events.

use std::cell::RefCell;
use std::collections::HashSet;

use parpool::Executor;
use simdev::{KernelProfile, KernelTraits, SimContext};

use crate::buffer::Buffer;
use crate::platform::Context;

/// Global/local work sizes for a 1-D launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NdRange {
    pub global: usize,
    /// Work-group size; `None` lets the implementation choose.
    pub local: Option<usize>,
}

impl NdRange {
    /// A 1-D range of `global` work items.
    pub fn d1(global: usize) -> Self {
        NdRange {
            global,
            local: None,
        }
    }

    /// A 1-D range with an explicit work-group size.
    pub fn d1_local(global: usize, local: usize) -> Self {
        NdRange {
            global,
            local: Some(local),
        }
    }
}

/// A kernel object: name plus declared argument count. Arguments are bound
/// by closure capture at enqueue time (this is Rust), but — like
/// `clSetKernelArg` — every argument index must be marked set before a
/// launch is accepted, reproducing the host-side ceremony the paper counts
/// against OpenCL's complexity (§3.6).
#[derive(Debug)]
pub struct Kernel {
    name: &'static str,
    num_args: usize,
    args_set: RefCell<HashSet<usize>>,
}

impl Kernel {
    /// `clCreateKernel`: declare a kernel with `num_args` arguments.
    pub fn create(name: &'static str, num_args: usize) -> Self {
        Kernel {
            name,
            num_args,
            args_set: RefCell::new(HashSet::new()),
        }
    }

    /// Kernel name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// `clSetKernelArg`.
    ///
    /// # Panics
    /// Panics if `index` is out of range for the declared argument count.
    pub fn set_arg(&self, index: usize) {
        assert!(
            index < self.num_args,
            "kernel '{}' has {} args",
            self.name,
            self.num_args
        );
        self.args_set.borrow_mut().insert(index);
    }

    /// Mark every argument set in one call (for kernels whose bindings
    /// never change between launches).
    pub fn set_all_args(&self) {
        for i in 0..self.num_args {
            self.set_arg(i);
        }
    }

    fn assert_ready(&self) {
        let set = self.args_set.borrow();
        for i in 0..self.num_args {
            assert!(
                set.contains(&i),
                "kernel '{}': argument {} not set",
                self.name,
                i
            );
        }
    }
}

/// Completion record for one enqueued command (`cl_event` with
/// `CL_QUEUE_PROFILING_ENABLE`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Simulated queue timestamp when the command started.
    pub start: f64,
    /// Simulated duration of the command.
    pub duration: f64,
}

impl Event {
    /// Simulated end timestamp.
    pub fn end(&self) -> f64 {
        self.start + self.duration
    }
}

/// An in-order command queue bound to one device.
pub struct CommandQueue<'a> {
    sim: &'a SimContext,
    exec: &'a dyn Executor,
}

impl<'a> CommandQueue<'a> {
    /// `clCreateCommandQueue`.
    pub fn new(_context: &Context, sim: &'a SimContext, exec: &'a dyn Executor) -> Self {
        CommandQueue { sim, exec }
    }

    /// The simulated-device context this queue charges.
    pub fn sim(&self) -> &SimContext {
        self.sim
    }

    /// `clEnqueueWriteBuffer` (blocking): host → device.
    pub fn enqueue_write_buffer(&self, buf: &mut Buffer<f64>, src: &[f64]) -> Event {
        assert_eq!(buf.len(), src.len(), "write size must match buffer");
        let start = self.sim.clock.seconds();
        buf.device_data_mut().copy_from_slice(src);
        let duration = self.sim.transfer(buf.bytes());
        Event { start, duration }
    }

    /// `clEnqueueReadBuffer` (blocking): device → host.
    pub fn enqueue_read_buffer(&self, buf: &Buffer<f64>, dst: &mut [f64]) -> Event {
        assert_eq!(buf.len(), dst.len(), "read size must match buffer");
        let start = self.sim.clock.seconds();
        dst.copy_from_slice(buf.device_data());
        let duration = self.sim.transfer(buf.bytes());
        Event { start, duration }
    }

    /// `clEnqueueNDRangeKernel`: launch `kernel` over `range`, executing
    /// `f(global_id)` for every work item.
    ///
    /// # Panics
    /// Panics if any declared argument is unset, or if an explicit local
    /// size does not divide the global size (OpenCL 1.x rule).
    pub fn enqueue_nd_range(
        &self,
        kernel: &Kernel,
        profile: &KernelProfile,
        range: NdRange,
        f: &(dyn Fn(usize) + Sync),
    ) -> Event {
        kernel.assert_ready();
        if let Some(local) = range.local {
            assert!(
                local > 0 && range.global.is_multiple_of(local),
                "global size must be a multiple of local size"
            );
        }
        let start = self.sim.clock.seconds();
        let duration = self.sim.launch(profile);
        self.exec.run(range.global, f);
        Event { start, duration }
    }

    /// The manually-written two-pass reduction of §3.6: pass 1 computes
    /// one partial per work-group (`f(group_id)`), pass 2 reduces the
    /// partials. Charges **two** kernel launches. Partials join in group
    /// order, so the value is deterministic.
    pub fn enqueue_reduce(
        &self,
        kernel: &Kernel,
        profile: &KernelProfile,
        n_groups: usize,
        f: &(dyn Fn(usize) -> f64 + Sync),
    ) -> (f64, Event) {
        kernel.assert_ready();
        let start = self.sim.clock.seconds();
        let d1 = self.sim.launch(profile);
        let value = self.exec.run_sum(n_groups, f);
        // final pass over the work-group partials
        let final_profile = KernelProfile::new(
            "reduce_final_pass",
            n_groups as u64,
            1,
            0,
            1,
            KernelTraits {
                streaming: true,
                reduction: true,
                ..KernelTraits::default()
            },
        );
        let d2 = self.sim.launch(&final_profile);
        (
            value,
            Event {
                start,
                duration: d1 + d2,
            },
        )
    }

    /// The OpenCL 2.0 built-in work-group reduction
    /// (`work_group_reduce_add`) — the feature the paper expected to "offer
    /// an important improvement for performance portability" (§3.6):
    /// vendor-implemented, single-pass, no hand-written tree. One launch
    /// instead of two, and the kernel keeps its plain (non-reduction-
    /// penalised) bandwidth profile because the vendor tree is tuned.
    ///
    /// Requires an OpenCL 2.0 device (the simulated platform reports 1.2,
    /// so callers opt in explicitly — as real ports gate on
    /// `CL_DEVICE_OPENCL_C_VERSION`).
    pub fn enqueue_builtin_reduce(
        &self,
        kernel: &Kernel,
        profile: &KernelProfile,
        n_groups: usize,
        f: &(dyn Fn(usize) -> f64 + Sync),
    ) -> (f64, Event) {
        kernel.assert_ready();
        let start = self.sim.clock.seconds();
        let duration = self.sim.launch(profile);
        let value = self.exec.run_sum(n_groups, f);
        (value, Event { start, duration })
    }

    /// `clFinish`: the queue is in-order and blocking, so this is a no-op
    /// kept for API fidelity.
    pub fn finish(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{Context, Platform};
    use parpool::SerialExec;
    use simdev::{devices, ModelProfile};

    fn setup() -> (Context, SimContext) {
        let cl_ctx = Context::new(
            Platform::list()[0]
                .devices(&[devices::gpu_k20x()])
                .remove(0),
        );
        let sim = SimContext::new(
            devices::gpu_k20x(),
            ModelProfile::ideal("OpenCL"),
            vec![],
            1,
        );
        (cl_ctx, sim)
    }

    #[test]
    fn write_read_roundtrip_charges_transfers() {
        let (cl, sim) = setup();
        let q = CommandQueue::new(&cl, &sim, &SerialExec);
        let mut buf = Buffer::new(&cl, 8);
        let src: Vec<f64> = (0..8).map(|x| x as f64).collect();
        q.enqueue_write_buffer(&mut buf, &src);
        let mut dst = vec![0.0; 8];
        q.enqueue_read_buffer(&buf, &mut dst);
        assert_eq!(dst, src);
        let snap = sim.clock.snapshot();
        assert_eq!(snap.transfers, 2);
        assert_eq!(snap.transfer_bytes, 128);
    }

    #[test]
    fn nd_range_requires_args() {
        let (cl, sim) = setup();
        let q = CommandQueue::new(&cl, &sim, &SerialExec);
        let k = Kernel::create("cg_calc_w", 3);
        k.set_arg(0);
        k.set_arg(1);
        let p = KernelProfile::streaming("cg_calc_w", 8, 1, 1, 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            q.enqueue_nd_range(&k, &p, NdRange::d1(8), &|_| {});
        }));
        assert!(result.is_err(), "launch with unset arg must fail");
        k.set_arg(2);
        q.enqueue_nd_range(&k, &p, NdRange::d1(8), &|_| {});
    }

    #[test]
    fn local_size_must_divide_global() {
        let (cl, sim) = setup();
        let q = CommandQueue::new(&cl, &sim, &SerialExec);
        let k = Kernel::create("k", 0);
        let p = KernelProfile::streaming("k", 10, 1, 1, 1);
        let bad = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            q.enqueue_nd_range(&k, &p, NdRange::d1_local(10, 3), &|_| {});
        }));
        assert!(bad.is_err());
        q.enqueue_nd_range(&k, &p, NdRange::d1_local(10, 5), &|_| {});
    }

    #[test]
    fn two_pass_reduction_charges_two_launches() {
        let (cl, sim) = setup();
        let q = CommandQueue::new(&cl, &sim, &SerialExec);
        let k = Kernel::create("dot", 0);
        let p = KernelProfile::reduction("dot", 1000, 2, 2);
        let (value, event) = q.enqueue_reduce(&k, &p, 100, &|g| g as f64);
        assert_eq!(value, 4950.0);
        assert_eq!(sim.clock.snapshot().kernels, 2);
        assert!(event.duration > 0.0);
        assert!(event.end() > event.start);
    }

    #[test]
    fn builtin_reduce_single_launch_same_value() {
        let (cl, sim) = setup();
        let q = CommandQueue::new(&cl, &sim, &SerialExec);
        let k = Kernel::create("dot", 0);
        let p = KernelProfile::reduction("dot", 1000, 2, 2);
        let (manual, _) = q.enqueue_reduce(&k, &p, 100, &|g| g as f64);
        let kernels_after_manual = sim.clock.snapshot().kernels;
        let (builtin, _) = q.enqueue_builtin_reduce(&k, &p, 100, &|g| g as f64);
        let kernels_after_builtin = sim.clock.snapshot().kernels - kernels_after_manual;
        assert_eq!(manual, builtin, "same deterministic value");
        assert_eq!(kernels_after_manual, 2, "manual reduction is two-pass");
        assert_eq!(kernels_after_builtin, 1, "built-in reduction is one launch");
    }

    #[test]
    fn events_carry_queue_timeline() {
        let (cl, sim) = setup();
        let q = CommandQueue::new(&cl, &sim, &SerialExec);
        let k = Kernel::create("k", 0);
        let p = KernelProfile::streaming("k", 1 << 20, 2, 1, 1);
        let e1 = q.enqueue_nd_range(&k, &p, NdRange::d1(4), &|_| {});
        let e2 = q.enqueue_nd_range(&k, &p, NdRange::d1(4), &|_| {});
        assert!(e2.start >= e1.end() - 1e-15, "in-order queue timeline");
        q.finish();
    }
}
