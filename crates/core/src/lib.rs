//! # tea-core
//!
//! Core substrate for the TeaLeaf reproduction: the structured 2-D grid, the
//! field containers every programming-model port operates on, reflective halo
//! machinery, the `tea.in` problem configuration format, the physics that
//! turns densities into conduction coefficients, and the field-summary
//! diagnostics the original mini-app reports.
//!
//! Nothing in this crate knows about programming models or devices; it is the
//! shared numerical ground truth. All eight ports in the `tealeaf` crate
//! consume these types, which is how the reproduction keeps "core solver
//! logic and parameters consistent between ports" (paper §3).

pub mod compare;
pub mod config;
pub mod field;
pub mod halo;
pub mod mesh;
pub mod physics;
pub mod state;
pub mod summary;
pub mod tablefmt;
pub mod vtk;

pub use config::{Coefficient, SolverKind, TeaConfig};
pub use field::Field2d;
pub use mesh::Mesh2d;
pub use state::{Geometry, State};
pub use summary::Summary;
