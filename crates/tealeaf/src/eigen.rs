//! Eigenvalue estimation for Chebyshev and PPCG.
//!
//! TeaLeaf estimates the operator's extremal eigenvalues from the Lanczos
//! tridiagonal matrix implied by the CG coefficients: after `k` CG
//! iterations with step sizes `α` and update ratios `β`,
//!
//! ```text
//! T[0,0]   = 1/α₀
//! T[i,i]   = 1/αᵢ + βᵢ₋₁/αᵢ₋₁
//! T[i,i-1] = √βᵢ₋₁ / αᵢ₋₁
//! ```
//!
//! whose eigenvalues approximate the spectrum of `A`. The tridiagonal
//! eigenproblem is solved with the classic QL algorithm with implicit
//! shifts (`tqli`), reimplemented here without eigenvectors.

/// Eigenvalues of a symmetric tridiagonal matrix, ascending.
///
/// `diag` holds the diagonal, `off` the sub-diagonal with `off[0]` unused
/// (one-based offset as in the classic routine).
///
/// Returns `None` if the iteration fails to converge (more than 30 QL
/// sweeps for some eigenvalue — essentially impossible for well-formed
/// input).
pub fn tqli(diag: &[f64], off: &[f64]) -> Option<Vec<f64>> {
    let n = diag.len();
    assert_eq!(
        off.len(),
        n,
        "off-diagonal must have the same length (index 0 unused)"
    );
    let mut d = diag.to_vec();
    // shift the sub-diagonal down one slot: e[i] couples i and i+1
    let mut e: Vec<f64> = (0..n)
        .map(|i| if i + 1 < n { off[i + 1] } else { 0.0 })
        .collect();

    for l in 0..n {
        let mut iterations = 0;
        loop {
            // find a negligible off-diagonal element
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iterations += 1;
            if iterations > 30 {
                return None;
            }
            // implicit shift from the 2×2 trailing block
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            let mut underflow = false;
            for i in (l..m).rev() {
                let f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // rotation annihilated early: recover and restart sweep
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    d.sort_by(|a, b| a.partial_cmp(b).expect("eigenvalues are finite"));
    Some(d)
}

/// Estimated extremal eigenvalues from recorded CG coefficients, with
/// TeaLeaf's safety margins applied (bounds are widened so the Chebyshev
/// interval is guaranteed to contain the true spectrum).
///
/// Returns `None` when fewer than 2 iterations were recorded or the QL
/// iteration failed.
pub fn eigenvalue_estimate(alphas: &[f64], betas: &[f64]) -> Option<(f64, f64)> {
    let k = alphas.len().min(betas.len());
    if k < 2 {
        return None;
    }
    let mut diag = vec![0.0; k];
    let mut off = vec![0.0; k];
    for i in 0..k {
        diag[i] = 1.0 / alphas[i];
        if i > 0 {
            diag[i] += betas[i - 1] / alphas[i - 1];
            off[i] = betas[i - 1].sqrt() / alphas[i - 1];
        }
    }
    let eigs = tqli(&diag, &off)?;
    let (min, max) = (eigs[0], eigs[k - 1]);
    if !(min.is_finite() && max.is_finite()) || min <= 0.0 {
        return None;
    }
    // TeaLeaf widens the estimated interval for safety.
    Some((min * 0.95, max * 1.05))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let d = [3.0, 1.0, 2.0];
        let e = [0.0, 0.0, 0.0];
        let eig = tqli(&d, &e).unwrap();
        assert_close(eig[0], 1.0, 1e-12);
        assert_close(eig[1], 2.0, 1e-12);
        assert_close(eig[2], 3.0, 1e-12);
    }

    #[test]
    fn two_by_two_known() {
        // [[2,1],[1,2]] → eigenvalues 1, 3
        let eig = tqli(&[2.0, 2.0], &[0.0, 1.0]).unwrap();
        assert_close(eig[0], 1.0, 1e-12);
        assert_close(eig[1], 3.0, 1e-12);
    }

    #[test]
    fn laplacian_tridiagonal() {
        // 1-D Laplacian: diag 2, off -1, size n → eigs 2 - 2cos(kπ/(n+1))
        let n = 16;
        let d = vec![2.0; n];
        let mut e = vec![-1.0; n];
        e[0] = 0.0;
        let eig = tqli(&d, &e).unwrap();
        for (k, ev) in eig.iter().enumerate() {
            let expect =
                2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert_close(*ev, expect, 1e-10);
        }
    }

    #[test]
    fn single_element() {
        let eig = tqli(&[5.0], &[0.0]).unwrap();
        assert_eq!(eig, vec![5.0]);
    }

    #[test]
    fn estimate_needs_two_iterations() {
        assert!(eigenvalue_estimate(&[0.5], &[0.1]).is_none());
        assert!(eigenvalue_estimate(&[], &[]).is_none());
    }

    #[test]
    fn estimate_brackets_identity_like_operator() {
        // For A = I, CG converges with α = 1, β = 0 immediately; a slightly
        // perturbed sequence should give eigenvalues near 1.
        let alphas = [1.0, 0.99, 1.01];
        let betas = [0.001, 0.001, 0.001];
        let (lo, hi) = eigenvalue_estimate(&alphas, &betas).unwrap();
        assert!(lo > 0.5 && hi < 2.0, "({lo}, {hi})");
        assert!(lo < hi);
    }

    #[test]
    fn margins_widen_interval() {
        let alphas = [0.5, 0.4, 0.45, 0.42];
        let betas = [0.2, 0.3, 0.25, 0.28];
        let (lo, hi) = eigenvalue_estimate(&alphas, &betas).unwrap();
        // recompute the raw extremes
        let k = 4;
        let mut diag = vec![0.0; k];
        let mut off = vec![0.0; k];
        for i in 0..k {
            diag[i] = 1.0 / alphas[i];
            if i > 0 {
                diag[i] += betas[i - 1] / alphas[i - 1];
                off[i] = betas[i - 1].sqrt() / alphas[i - 1];
            }
        }
        let eig = tqli(&diag, &off).unwrap();
        assert_close(lo, eig[0] * 0.95, 1e-12);
        assert_close(hi, eig[3] * 1.05, 1e-12);
    }
}
