//! The OpenMP 4.0 and OpenACC ports.
//!
//! The paper built its OpenACC port from the OpenMP 4.0 codebase by
//! "changing the directives but maintaining the same data transitions"
//! (§3.2); this module mirrors that literally — one implementation, two
//! dialects ([`directive_rs::Flavor`]), distinct cost profiles.
//!
//! Data residency follows §3.1: at the highest possible scope a data
//! region keeps every array on the device for the duration of the run
//! (implemented with the unstructured `enter data`/`exit data` pair the
//! OpenMP 4.5 spec added, since the region must span driver calls). Each
//! kernel is one `target` region — and pays the per-target overhead the
//! paper measured, which dominates at small meshes (Figure 11's
//! intercepts).

use directive_rs::{DeviceEnv, Flavor, MapClause, MapDir};
use parpool::StaticPool;
use simdev::{DeviceSpec, SimContext};
use tea_core::config::Coefficient;
use tea_core::halo::FieldId;
use tea_core::summary::Summary;

use crate::kernels::{NormField, TeaLeafPort};
use crate::model_id::ModelId;
use crate::ports::common::{self, profiles, PortFields, Us};
use crate::problem::Problem;

/// OpenMP 4.0 / OpenACC TeaLeaf.
pub struct DirectivePort {
    model: ModelId,
    flavor: Flavor,
    ctx: SimContext,
    f: PortFields,
}

impl DirectivePort {
    /// Build the port; `model` must be `Omp4` or `OpenAcc`.
    pub fn new(model: ModelId, device: DeviceSpec, problem: &Problem, seed: u64) -> Self {
        let flavor = match model {
            ModelId::Omp4 => Flavor::Omp4,
            ModelId::OpenAcc => Flavor::OpenAcc,
            other => panic!("DirectivePort cannot implement {other:?}"),
        };
        let ctx = common::make_context(model, device, problem, seed);
        let f = PortFields::new(&problem.mesh, &problem.density, &problem.energy);
        let port = DirectivePort {
            model,
            flavor,
            ctx,
            f,
        };
        // Highest-scope data region: density and energy move to the
        // device, the work arrays are device-allocated only.
        let bytes = (port.f.mesh.len() * 8) as u64;
        port.env_with(|env| {
            env.enter_data(&[
                MapClause::new("density", bytes, MapDir::To),
                MapClause::new("energy", bytes, MapDir::To),
                MapClause::new("u", bytes, MapDir::Alloc),
                MapClause::new("u0", bytes, MapDir::Alloc),
                MapClause::new("p", bytes, MapDir::Alloc),
                MapClause::new("r", bytes, MapDir::Alloc),
                MapClause::new("w", bytes, MapDir::Alloc),
                MapClause::new("z", bytes, MapDir::Alloc),
                MapClause::new("kx", bytes, MapDir::Alloc),
                MapClause::new("ky", bytes, MapDir::Alloc),
                MapClause::new("sd", bytes, MapDir::Alloc),
            ]);
        });
        port
    }

    fn pool(&self) -> &'static StaticPool {
        parpool::global_static()
    }

    fn env_with<R>(&self, body: impl FnOnce(&DeviceEnv<'_>) -> R) -> R {
        let env = DeviceEnv::new(&self.ctx, self.pool(), self.flavor);
        body(&env)
    }
}

impl TeaLeafPort for DirectivePort {
    fn model(&self) -> ModelId {
        self.model
    }

    fn context(&self) -> &SimContext {
        &self.ctx
    }

    fn context_mut(&mut self) -> &mut SimContext {
        &mut self.ctx
    }

    fn init_fields(&mut self, coefficient: Coefficient, rx: f64, ry: f64) {
        let mesh = &self.f.mesh;
        let j0 = mesh.i0();
        let pool = self.pool();
        {
            let env = DeviceEnv::new(&self.ctx, pool, self.flavor);
            let (density, energy) = (&self.f.density, &self.f.energy);
            let (u0, u) = (Us::new(&mut self.f.u0), Us::new(&mut self.f.u));
            env.target_parallel_for(
                &profiles::init_u0(profiles::cells(mesh)),
                mesh.y_cells,
                &|jj| {
                    // SAFETY: rows disjoint.
                    unsafe { common::row_init_u0(mesh, j0 + jj, density, energy, &u0, &u) };
                },
            );
        }
        let env = DeviceEnv::new(&self.ctx, pool, self.flavor);
        let density = &self.f.density;
        let (kx, ky) = (Us::new(&mut self.f.kx), Us::new(&mut self.f.ky));
        env.target_parallel_for(
            &profiles::init_coeffs(profiles::cells(mesh)),
            mesh.y_cells + 1,
            &|jj| {
                // SAFETY: rows disjoint.
                unsafe {
                    common::row_init_coeffs(mesh, j0 + jj, coefficient, rx, ry, density, &kx, &ky)
                };
            },
        );
    }

    fn halo_update(&mut self, fields: &[FieldId], depth: usize) {
        // Each halo pass is still charged as its own small target region —
        // the paper's per-target overhead applies per field — but the ghost
        // writes execute as one batched pair of parallel regions.
        let profile = profiles::halo(&self.f.mesh, depth);
        for _ in fields {
            self.ctx.launch(&profile);
        }
        let pool = self.pool();
        self.f.halo_batch(fields, depth, pool);
    }

    fn cg_init(&mut self, preconditioner: bool) -> f64 {
        let mesh = &self.f.mesh;
        let j0 = mesh.i0();
        let env = DeviceEnv::new(&self.ctx, self.pool(), self.flavor);
        let (u, u0, kx, ky) = (&self.f.u, &self.f.u0, &self.f.kx, &self.f.ky);
        let (w, r, p, z) = (
            Us::new(&mut self.f.w),
            Us::new(&mut self.f.r),
            Us::new(&mut self.f.p),
            Us::new(&mut self.f.z),
        );
        env.target_reduce(
            &profiles::cg_init(profiles::cells(mesh), preconditioner),
            mesh.y_cells,
            &|jj| {
                // SAFETY: rows disjoint.
                unsafe {
                    common::row_cg_init(
                        mesh,
                        j0 + jj,
                        preconditioner,
                        u,
                        u0,
                        kx,
                        ky,
                        &w,
                        &r,
                        &p,
                        &z,
                    )
                }
            },
        )
    }

    fn cg_calc_w(&mut self) -> f64 {
        let mesh = &self.f.mesh;
        let j0 = mesh.i0();
        let env = DeviceEnv::new(&self.ctx, self.pool(), self.flavor);
        let (p, kx, ky) = (&self.f.p, &self.f.kx, &self.f.ky);
        let w = Us::new(&mut self.f.w);
        env.target_reduce(
            &profiles::cg_calc_w(profiles::cells(mesh)),
            mesh.y_cells,
            &|jj| {
                // SAFETY: rows disjoint.
                unsafe { common::row_cg_calc_w(mesh, j0 + jj, p, kx, ky, &w) }
            },
        )
    }

    fn cg_calc_ur(&mut self, alpha: f64, preconditioner: bool) -> f64 {
        let mesh = &self.f.mesh;
        let j0 = mesh.i0();
        let env = DeviceEnv::new(&self.ctx, self.pool(), self.flavor);
        let (p, w, kx, ky) = (&self.f.p, &self.f.w, &self.f.kx, &self.f.ky);
        let (u, r, z) = (
            Us::new(&mut self.f.u),
            Us::new(&mut self.f.r),
            Us::new(&mut self.f.z),
        );
        env.target_reduce(
            &profiles::cg_calc_ur(profiles::cells(mesh), preconditioner),
            mesh.y_cells,
            &|jj| {
                // SAFETY: rows disjoint.
                unsafe {
                    common::row_cg_calc_ur(
                        mesh,
                        j0 + jj,
                        alpha,
                        preconditioner,
                        p,
                        w,
                        kx,
                        ky,
                        &u,
                        &r,
                        &z,
                    )
                }
            },
        )
    }

    fn cg_calc_p(&mut self, beta: f64, preconditioner: bool) {
        let mesh = &self.f.mesh;
        let j0 = mesh.i0();
        let env = DeviceEnv::new(&self.ctx, self.pool(), self.flavor);
        let (r, z) = (&self.f.r, &self.f.z);
        let p = Us::new(&mut self.f.p);
        env.target_parallel_for(
            &profiles::cg_calc_p(profiles::cells(mesh)),
            mesh.y_cells,
            &|jj| {
                // SAFETY: rows disjoint.
                unsafe { common::row_cg_calc_p(mesh, j0 + jj, beta, preconditioner, r, z, &p) };
            },
        );
    }

    fn cheby_init(&mut self, theta: f64) {
        self.cheby_step(true, theta, 0.0, 0.0);
    }

    fn cheby_iterate(&mut self, alpha: f64, beta: f64) {
        self.cheby_step(false, 0.0, alpha, beta);
    }

    fn ppcg_init_sd(&mut self, theta: f64) {
        let mesh = &self.f.mesh;
        let j0 = mesh.i0();
        let env = DeviceEnv::new(&self.ctx, self.pool(), self.flavor);
        let r = &self.f.r;
        let sd = Us::new(&mut self.f.sd);
        env.target_parallel_for(
            &profiles::ppcg_init_sd(profiles::cells(mesh)),
            mesh.y_cells,
            &|jj| {
                // SAFETY: rows disjoint.
                unsafe { common::row_sd_init(mesh, j0 + jj, theta, r, &sd) };
            },
        );
    }

    fn ppcg_inner(&mut self, alpha: f64, beta: f64) {
        let mesh = &self.f.mesh;
        let j0 = mesh.i0();
        let pool = self.pool();
        let (p_w, p_upd) = profiles::fused_pair(
            crate::ir::FusionKind::PpcgInner,
            profiles::cells(mesh),
            false,
            self.lowering_caps(),
        );
        {
            let env = DeviceEnv::new(&self.ctx, pool, self.flavor);
            let (sd, kx, ky) = (&self.f.sd, &self.f.kx, &self.f.ky);
            let w = Us::new(&mut self.f.w);
            env.target_parallel_for(&p_w, mesh.y_cells, &|jj| {
                // SAFETY: rows disjoint.
                unsafe { common::row_ppcg_w(mesh, j0 + jj, sd, kx, ky, &w) };
            });
        }
        let env = DeviceEnv::new(&self.ctx, pool, self.flavor);
        let w = &self.f.w;
        let (u, r, sd) = (
            Us::new(&mut self.f.u),
            Us::new(&mut self.f.r),
            Us::new(&mut self.f.sd),
        );
        env.target_parallel_for(&p_upd, mesh.y_cells, &|jj| {
            // SAFETY: rows disjoint.
            unsafe { common::row_ppcg_update(mesh, j0 + jj, alpha, beta, w, &u, &r, &sd) };
        });
    }

    fn jacobi_iterate(&mut self) -> f64 {
        let mesh = &self.f.mesh;
        let j0 = mesh.i0();
        let pool = self.pool();
        {
            let env = DeviceEnv::new(&self.ctx, pool, self.flavor);
            let u = &self.f.u;
            let r = Us::new(&mut self.f.r);
            env.target_parallel_for(
                &profiles::jacobi_copy(profiles::cells(mesh)),
                mesh.y_cells,
                &|jj| {
                    // SAFETY: rows disjoint.
                    unsafe { common::row_jacobi_copy(mesh, j0 + jj, u, &r) };
                },
            );
        }
        let env = DeviceEnv::new(&self.ctx, pool, self.flavor);
        let (u0, r, kx, ky) = (&self.f.u0, &self.f.r, &self.f.kx, &self.f.ky);
        let u = Us::new(&mut self.f.u);
        env.target_reduce(
            &profiles::jacobi_iterate(profiles::cells(mesh)),
            mesh.y_cells,
            &|jj| {
                // SAFETY: rows disjoint.
                unsafe { common::row_jacobi_iterate(mesh, j0 + jj, u0, r, kx, ky, &u) }
            },
        )
    }

    fn residual(&mut self) {
        let mesh = &self.f.mesh;
        let j0 = mesh.i0();
        let env = DeviceEnv::new(&self.ctx, self.pool(), self.flavor);
        let (u, u0, kx, ky) = (&self.f.u, &self.f.u0, &self.f.kx, &self.f.ky);
        let r = Us::new(&mut self.f.r);
        env.target_parallel_for(
            &profiles::residual(profiles::cells(mesh)),
            mesh.y_cells,
            &|jj| {
                // SAFETY: rows disjoint.
                unsafe { common::row_residual(mesh, j0 + jj, u, u0, kx, ky, &r) };
            },
        );
    }

    fn calc_2norm(&mut self, field: NormField) -> f64 {
        let mesh = &self.f.mesh;
        let j0 = mesh.i0();
        let env = DeviceEnv::new(&self.ctx, self.pool(), self.flavor);
        let x = match field {
            NormField::U0 => &self.f.u0,
            NormField::R => &self.f.r,
        };
        env.target_reduce(
            &profiles::norm(profiles::cells(mesh)),
            mesh.y_cells,
            &|jj| common::row_norm(mesh, j0 + jj, x),
        )
    }

    fn finalise(&mut self) {
        let mesh = &self.f.mesh;
        let j0 = mesh.i0();
        let env = DeviceEnv::new(&self.ctx, self.pool(), self.flavor);
        let (u, density) = (&self.f.u, &self.f.density);
        let energy = Us::new(&mut self.f.energy);
        env.target_parallel_for(
            &profiles::finalise(profiles::cells(mesh)),
            mesh.y_cells,
            &|jj| {
                // SAFETY: rows disjoint.
                unsafe { common::row_finalise(mesh, j0 + jj, u, density, &energy) };
            },
        );
        // energy stays resident: the field summary reduces on the device
        // and only scalars come back, as in the reference ports.
    }

    fn field_summary(&mut self) -> Summary {
        let mesh = &self.f.mesh;
        let j0 = mesh.i0();
        let env = DeviceEnv::new(&self.ctx, self.pool(), self.flavor);
        let vol = mesh.cell_volume();
        let (density, energy, u) = (&self.f.density, &self.f.energy, &self.f.u);
        let acc = env.target_reduce_many(
            &profiles::field_summary(profiles::cells(mesh)),
            mesh.y_cells,
            &|jj| common::row_summary(mesh, j0 + jj, density, energy, u, vol),
        );
        Summary {
            volume: acc[0],
            mass: acc[1],
            internal_energy: acc[2],
            temperature: acc[3],
        }
    }

    fn read_u(&mut self) -> Vec<f64> {
        let bytes = (self.f.mesh.len() * 8) as u64;
        self.env_with(|env| env.exit_data(&[MapClause::new("u", bytes, MapDir::From)]));
        self.f.u.clone()
    }

    fn inspect_field(&self, id: FieldId) -> Option<Vec<f64>> {
        Some(self.f.field(id).to_vec())
    }

    fn poke_field(&mut self, id: FieldId, k: usize, value: f64) {
        self.f.field_mut(id)[k] = value;
    }
}

impl DirectivePort {
    fn cheby_step(&mut self, first: bool, theta: f64, alpha: f64, beta: f64) {
        let mesh = &self.f.mesh;
        let j0 = mesh.i0();
        let pool = self.pool();
        let (p_p, p_u) = profiles::fused_pair(
            crate::ir::FusionKind::ChebyStep,
            profiles::cells(mesh),
            false,
            self.lowering_caps(),
        );
        {
            let env = DeviceEnv::new(&self.ctx, pool, self.flavor);
            let (u, u0, kx, ky) = (&self.f.u, &self.f.u0, &self.f.kx, &self.f.ky);
            let (w, r, p) = (
                Us::new(&mut self.f.w),
                Us::new(&mut self.f.r),
                Us::new(&mut self.f.p),
            );
            env.target_parallel_for(&p_p, mesh.y_cells, &|jj| {
                // SAFETY: rows disjoint.
                unsafe {
                    common::row_cheby_calc_p(
                        mesh,
                        j0 + jj,
                        first,
                        theta,
                        alpha,
                        beta,
                        u,
                        u0,
                        kx,
                        ky,
                        &w,
                        &r,
                        &p,
                    )
                };
            });
        }
        let env = DeviceEnv::new(&self.ctx, pool, self.flavor);
        let p = &self.f.p;
        let u = Us::new(&mut self.f.u);
        env.target_parallel_for(&p_u, mesh.y_cells, &|jj| {
            // SAFETY: rows disjoint.
            unsafe { common::row_add_p_to_u(mesh, j0 + jj, p, &u) };
        });
    }
}
