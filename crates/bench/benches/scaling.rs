//! Weak/strong scaling sweeps over the 2-D tiled distributed solvers
//! (run via `cargo bench -p tea-bench --bench scaling`).
//!
//! Writes `scaling_weak.csv` and `scaling_strong.csv` under `results/`
//! at the workspace root. The default scale is the committed smoke
//! sweep; `TEA_SCALING_FULL=1` selects the paper-shaped sweep (weak to
//! 16384² — see EXPERIMENTS.md before running it), and
//! `TEA_SCALING_BASE`/`TEA_SCALING_STRONG` override individual edges.
//! Every number is a deterministic logical cost counter, so the CSVs
//! regenerate byte-identical on any host.

use std::fs;
use std::path::PathBuf;

use tea_bench::{strong_scaling, strong_table, weak_scaling, weak_table, SweepScale};

fn results_dir() -> PathBuf {
    let dir = std::env::var("TEA_RESULTS_DIR")
        .unwrap_or_else(|_| format!("{}/../../results", env!("CARGO_MANIFEST_DIR")));
    let path = PathBuf::from(dir);
    fs::create_dir_all(&path).expect("create results dir");
    path
}

fn emit(name: &str, table: &tea_core::tablefmt::Table) {
    println!("{}", table.render());
    let path = results_dir().join(format!("{name}.csv"));
    fs::write(&path, table.to_csv()).expect("write csv");
    println!("  -> {}\n", path.display());
}

fn main() {
    // `cargo bench` passes harness flags like `--test`; accept an
    // optional section filter (`-- weak` / `-- strong`) alongside them.
    let filter: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    let wanted = |name: &str| filter.is_empty() || filter.iter().any(|f| name.contains(f.as_str()));

    let scale = SweepScale::from_env();
    println!(
        "== TeaLeaf distributed scaling sweeps ==\nweak base {0}x{0} per rank, strong mesh {1}x{1}, eps {2:.0e} (TEA_SCALING_FULL=1 for the paper-shaped sweep)\n",
        scale.base, scale.strong, scale.eps
    );

    if wanted("weak") {
        emit("scaling_weak", &weak_table(&weak_scaling(scale)));
    }
    if wanted("strong") {
        emit("scaling_strong", &strong_table(&strong_scaling(scale)));
    }
}
