//! Dense 2-D field storage.
//!
//! A [`Field2d`] is the host-side ground truth for one physical quantity
//! (density, energy, temperature `u`, CG work vectors, …). Every
//! programming-model port wraps or mirrors these buffers with its own
//! container (Kokkos `View`, OpenCL `Buffer`, …) but the layout — row-major
//! with halo padding — is identical everywhere so results can be compared
//! bit-for-bit.

use crate::mesh::Mesh2d;

/// A row-major `width × height` array of `f64` including halo padding.
#[derive(Debug, Clone, PartialEq)]
pub struct Field2d {
    data: Vec<f64>,
    width: usize,
    height: usize,
}

impl Field2d {
    /// Allocate a zero-filled field shaped for `mesh` (padded extents).
    pub fn zeros(mesh: &Mesh2d) -> Self {
        Field2d {
            data: vec![0.0; mesh.len()],
            width: mesh.width(),
            height: mesh.height(),
        }
    }

    /// Allocate a field with every element set to `value`.
    pub fn filled(mesh: &Mesh2d, value: f64) -> Self {
        Field2d {
            data: vec![value; mesh.len()],
            width: mesh.width(),
            height: mesh.height(),
        }
    }

    /// Build a field from raw data (must match `width*height`).
    pub fn from_vec(width: usize, height: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), width * height, "data length must match extents");
        Field2d {
            data,
            width,
            height,
        }
    }

    /// Padded width (x extent).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Padded height (y extent).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the field holds no elements (never the case for mesh fields).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at padded coordinate `(i, j)`.
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.width && j < self.height);
        self.data[j * self.width + i]
    }

    /// Mutable element at padded coordinate `(i, j)`.
    #[inline(always)]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        debug_assert!(i < self.width && j < self.height);
        &mut self.data[j * self.width + i]
    }

    /// Set element at `(i, j)`.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        *self.at_mut(i, j) = v;
    }

    /// Borrow the flat storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the flat storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the flat storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Overwrite every element with `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Copy all elements from `other` (extents must match).
    pub fn copy_from(&mut self, other: &Field2d) {
        assert_eq!(self.width, other.width);
        assert_eq!(self.height, other.height);
        self.data.copy_from_slice(&other.data);
    }

    /// Maximum absolute difference to `other` — used by the cross-port
    /// consistency tests.
    pub fn max_abs_diff(&self, other: &Field2d) -> f64 {
        assert_eq!(self.len(), other.len());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Sum over the interior cells of `mesh` (halo excluded), accumulated in
    /// row-major order for cross-port determinism.
    pub fn interior_sum(&self, mesh: &Mesh2d) -> f64 {
        let mut total = 0.0;
        for j in mesh.i0()..mesh.j1() {
            for i in mesh.i0()..mesh.i1() {
                total += self.at(i, j);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh2d {
        Mesh2d::square(4)
    }

    #[test]
    fn zeros_shape() {
        let f = Field2d::zeros(&mesh());
        assert_eq!(f.width(), 8);
        assert_eq!(f.height(), 8);
        assert_eq!(f.len(), 64);
        assert!(f.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn set_get_roundtrip() {
        let mut f = Field2d::zeros(&mesh());
        f.set(3, 5, 42.0);
        assert_eq!(f.at(3, 5), 42.0);
        assert_eq!(f.as_slice()[5 * 8 + 3], 42.0);
    }

    #[test]
    fn copy_and_diff() {
        let m = mesh();
        let mut a = Field2d::filled(&m, 1.0);
        let b = Field2d::filled(&m, 3.5);
        assert_eq!(a.max_abs_diff(&b), 2.5);
        a.copy_from(&b);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn interior_sum_excludes_halo() {
        let m = mesh();
        let mut f = Field2d::filled(&m, 1.0);
        // poison the halo; interior sum must ignore it
        f.set(0, 0, 1e9);
        f.set(7, 7, 1e9);
        assert_eq!(f.interior_sum(&m), 16.0);
    }

    #[test]
    #[should_panic]
    fn from_vec_length_checked() {
        let _ = Field2d::from_vec(3, 3, vec![0.0; 8]);
    }
}
