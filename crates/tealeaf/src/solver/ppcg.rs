//! Chebyshev Polynomially Preconditioned CG (`tea_leaf_ppcg`).
//!
//! PPCG wraps each CG iteration with `tl_ppcg_inner_steps` Chebyshev
//! smoothing steps on the residual (Boulton & McIntosh-Smith, ref \[2\]). The
//! inner steps are reduction-free stencil sweeps, so PPCG trades CG's
//! reduction traffic for extra bandwidth — fewer outer iterations, fewer
//! global synchronisations.

use tea_core::config::TeaConfig;
use tea_core::halo::FieldId;

use crate::cheby::{ChebyCoeffs, ChebyShift};
use crate::eigen::eigenvalue_estimate;
use crate::kernels::{traced_halo, NormField, TeaLeafPort};
use crate::resilience::PhaseGuard;
use crate::solver::cg::{self, CgHistory};
use crate::solver::SolveOutcome;

/// Run the PPCG solver.
pub fn solve(port: &mut dyn TeaLeafPort, config: &TeaConfig) -> SolveOutcome {
    let mut history = CgHistory::default();
    let mut guard = PhaseGuard::new(config);
    let presteps = config.tl_ch_cg_presteps.min(config.tl_max_iters);
    let (pre_outcome, mut rro) = cg::run_phase(
        port,
        false,
        config.tl_eps,
        presteps,
        &mut history,
        &mut guard,
    );
    if pre_outcome.converged || !guard.events.is_empty() {
        return annotate(pre_outcome, guard);
    }
    let initial = pre_outcome.initial;

    let Some((eigmin, eigmax)) = eigenvalue_estimate(&history.alphas, &history.betas) else {
        let (outcome, _) = cg::run_phase(
            port,
            false,
            config.tl_eps,
            config.tl_max_iters.saturating_sub(presteps),
            &mut history,
            &mut guard,
        );
        return annotate(
            SolveOutcome {
                iterations: outcome.iterations + pre_outcome.iterations,
                ..outcome
            },
            guard,
        );
    };
    let shift = ChebyShift::from_bounds(eigmin, eigmax);
    let inner = ChebyCoeffs::take_pairs(shift, config.tl_ppcg_inner_steps);

    let tel = port.context().telemetry().clone();
    let mut iterations = pre_outcome.iterations;
    let mut converged = false;
    let max_outer = config.tl_max_iters.saturating_sub(presteps);
    let mut outer = 0;
    while !converged && outer < max_outer {
        let iter_span = tel.open_span(
            "iteration",
            format_args!("ppcg outer {}", outer + 1),
            port.context().clock.seconds(),
        );
        traced_halo(port, &[FieldId::P], 1);
        let pw = port.cg_calc_w();
        let alpha = rro / pw;
        let _ = port.cg_calc_ur(alpha, false);
        // Inner polynomial smoothing: sd = r/θ, then inner_steps sweeps of
        // w = A·sd; r -= w; u += sd; sd = αₖ·sd + βₖ·r.
        port.ppcg_init_sd(shift.theta);
        for &(a, b) in &inner {
            traced_halo(port, &[FieldId::Sd], 1);
            port.ppcg_inner(a, b);
        }
        let rrn = port.calc_2norm(NormField::R);
        let beta = rrn / rro;
        port.cg_calc_p(beta, false);
        rro = rrn;
        outer += 1;
        iterations += 1;
        let mut bail = false;
        if rrn.abs() <= config.tl_eps * initial.abs() {
            converged = true;
        } else if let Some(event) = guard.sentinel.observe(iterations, rrn) {
            // Inner Chebyshev smoothing diverges when the eigenvalue
            // bounds miss the top of the spectrum (too few presteps);
            // with the default `tl_divergence_factor` of 1e12 this trips
            // exactly where the old hard-coded bail did, but now surfaces
            // a typed event the fallback chain reacts to (retry with a
            // widened estimation window) instead of silently giving up.
            tel.event(
                "sentinel",
                format_args!("{event}"),
                port.context().clock.seconds(),
            );
            guard.events.push(event);
            bail = true;
        }
        tel.close_span(iter_span, port.context().clock.seconds());
        if bail {
            break;
        }
    }
    annotate(
        SolveOutcome::clean(iterations, converged, rro, initial, Some((eigmin, eigmax))),
        guard,
    )
}

/// Move the guard's accumulated events onto the outcome.
fn annotate(mut outcome: SolveOutcome, guard: PhaseGuard) -> SolveOutcome {
    outcome.health = guard.events;
    outcome.recoveries = guard.recoveries;
    outcome
}
