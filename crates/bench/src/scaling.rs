//! Weak/strong scaling sweeps over the 2-D tiled distributed solvers.
//!
//! The paper's scaling story (Figures 10–12) is runtime versus mesh
//! growth; the distributed reproduction extends it to rank growth. The
//! metric here is **deterministic logical cost units**, not wall time:
//! the distributed workers charge one unit per cell update and one per
//! exchanged halo element, with elements hidden behind interior compute
//! (the overlap window) not charged — exactly the counters
//! [`OverlapStats`] accumulates. Every input to the CSV is an exact
//! integer counter from a bit-reproducible run, so the committed files
//! regenerate byte-identical on any host at any thread count.
//!
//! * **Weak scaling** holds the per-rank tile fixed (`base²` cells) and
//!   grows the mesh with the rank grid: `g×g` ranks solve a
//!   `(base·g)²` mesh. Ideal efficiency keeps per-rank cost flat;
//!   iterative reality adds iteration growth with the mesh edge, which
//!   the `iterations` column exposes separately.
//! * **Strong scaling** holds the mesh fixed and splits it over growing
//!   rank grids. Iteration counts are bit-identical across grids (the
//!   decomposition is numerically invisible), so speedup isolates the
//!   surface-to-volume communication term.

use tea_core::config::{SolverKind, TeaConfig};
use tea_core::tablefmt::Table;
use tealeaf::distributed::run_distributed_solver_instrumented;
use tealeaf::tile::OverlapStats;

/// The four distributed solvers, in registry order.
pub const SCALING_SOLVERS: [SolverKind; 4] = [
    SolverKind::ConjugateGradient,
    SolverKind::Chebyshev,
    SolverKind::Ppcg,
    SolverKind::Jacobi,
];

/// Square rank grids of the weak sweep (per-rank work constant).
pub const WEAK_GRIDS: [(usize, usize); 3] = [(1, 1), (2, 2), (4, 4)];

/// Rank grids of the strong sweep (fixed mesh, growing decomposition).
pub const STRONG_GRIDS: [(usize, usize); 5] = [(1, 1), (2, 1), (2, 2), (4, 2), (4, 4)];

/// Mesh/tolerance scale of one sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepScale {
    /// Weak sweep: per-rank tile edge (mesh edge = `base · g`).
    pub base: usize,
    /// Strong sweep: fixed mesh edge.
    pub strong: usize,
    pub eps: f64,
    /// Iteration cap, applied identically at every grid so capped runs
    /// stay bit-identical across decompositions.
    pub max_iters: usize,
}

impl SweepScale {
    /// The committed-CSV scale: small enough for CI, large enough that
    /// every tile still has interior cells at the 4×4 grid. The
    /// tolerance is tight enough that Chebyshev/PPCG outlive their 30
    /// CG presteps and run their own iterations (at 1e-10 the presteps
    /// alone converge and every row degenerates to CG).
    pub fn smoke() -> Self {
        SweepScale {
            base: 32,
            strong: 96,
            eps: 1.0e-13,
            max_iters: 2000,
        }
    }

    /// Environment-driven scale: `TEA_SCALING_FULL=1` selects the
    /// paper-shaped sweep (weak to 16384² over 16 ranks, strong at
    /// 8192² — hours of functional execution and tens of GB of fields;
    /// see EXPERIMENTS.md), `TEA_SCALING_BASE`/`TEA_SCALING_STRONG`
    /// override the smoke edges individually.
    pub fn from_env() -> Self {
        if std::env::var("TEA_SCALING_FULL").is_ok_and(|v| v == "1") {
            return SweepScale {
                base: 4096,
                strong: 8192,
                eps: 1.0e-12,
                max_iters: 20_000,
            };
        }
        let mut scale = SweepScale::smoke();
        let get = |k: &str| std::env::var(k).ok().and_then(|v| v.parse::<usize>().ok());
        if let Some(b) = get("TEA_SCALING_BASE") {
            scale.base = b;
        }
        if let Some(s) = get("TEA_SCALING_STRONG") {
            scale.strong = s;
        }
        scale
    }

    fn config(&self, solver: SolverKind, edge: usize) -> TeaConfig {
        let mut cfg = TeaConfig::paper_problem(edge);
        cfg.solver = solver;
        cfg.end_step = 1;
        cfg.tl_eps = self.eps;
        cfg.tl_max_iters = self.max_iters;
        cfg
    }
}

/// One run of one sweep: a solver on a rank grid.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    pub solver: SolverKind,
    pub mesh_edge: usize,
    pub grid: (usize, usize),
    pub iterations: usize,
    pub converged: bool,
    pub stats: OverlapStats,
}

impl ScalingPoint {
    pub fn ranks(&self) -> usize {
        self.grid.0 * self.grid.1
    }

    /// Per-rank logical cost: all cell updates plus the exchanged
    /// elements that interior compute did *not* hide, divided by the
    /// rank count (the counters are global sums over ranks).
    pub fn cost_units(&self) -> f64 {
        let s = &self.stats;
        let total =
            s.interior_cells + s.boundary_cells + (s.exchanged_elements - s.hidden_elements);
        total as f64 / self.ranks() as f64
    }
}

fn run_point(
    scale: SweepScale,
    solver: SolverKind,
    edge: usize,
    grid: (usize, usize),
) -> ScalingPoint {
    let cfg = scale.config(solver, edge);
    let (report, stats, _metrics) = run_distributed_solver_instrumented(grid.0, grid.1, &cfg, true);
    ScalingPoint {
        solver,
        mesh_edge: edge,
        grid,
        iterations: report.total_iterations,
        converged: report.converged,
        stats,
    }
}

/// The weak sweep: every solver × every square grid, mesh grown with
/// the grid so per-rank work is constant.
pub fn weak_scaling(scale: SweepScale) -> Vec<ScalingPoint> {
    let mut points = Vec::new();
    for solver in SCALING_SOLVERS {
        for grid in WEAK_GRIDS {
            points.push(run_point(scale, solver, scale.base * grid.0, grid));
        }
    }
    points
}

/// The strong sweep: every solver × every grid on the fixed mesh.
pub fn strong_scaling(scale: SweepScale) -> Vec<ScalingPoint> {
    let mut points = Vec::new();
    for solver in SCALING_SOLVERS {
        for grid in STRONG_GRIDS {
            points.push(run_point(scale, solver, scale.strong, grid));
        }
    }
    points
}

/// Efficiency of `p` against its solver's 1-rank row: cost ratio for
/// weak scaling (ideal = flat per-rank cost), cost ratio per rank for
/// strong scaling (ideal = perfect division of the 1-rank cost).
fn efficiency(points: &[ScalingPoint], p: &ScalingPoint, strong: bool) -> Option<f64> {
    let baseline = points
        .iter()
        .find(|q| q.solver == p.solver && q.grid == (1, 1))?;
    let ratio = baseline.cost_units() / p.cost_units();
    Some(if strong {
        ratio / p.ranks() as f64
    } else {
        ratio
    })
}

fn scaling_table(title: &str, points: &[ScalingPoint], strong: bool) -> Table {
    let mut table = Table::new(
        title,
        &[
            "solver",
            "mesh",
            "tiles",
            "ranks",
            "iterations",
            "converged",
            "interior_cells",
            "boundary_cells",
            "exchanged",
            "hidden",
            "overlap_pct",
            "cost_units",
            "efficiency_pct",
        ],
    );
    for p in points {
        let s = &p.stats;
        table.row(&[
            p.solver.name().to_string(),
            format!("{0}x{0}", p.mesh_edge),
            format!("{}x{}", p.grid.0, p.grid.1),
            p.ranks().to_string(),
            p.iterations.to_string(),
            p.converged.to_string(),
            s.interior_cells.to_string(),
            s.boundary_cells.to_string(),
            s.exchanged_elements.to_string(),
            s.hidden_elements.to_string(),
            format!("{:.2}", 100.0 * s.overlap_efficiency()),
            format!("{:.1}", p.cost_units()),
            efficiency(points, p, strong)
                .map(|e| format!("{:.2}", 100.0 * e))
                .unwrap_or_default(),
        ]);
    }
    table
}

/// The `results/scaling_weak.csv` table.
pub fn weak_table(points: &[ScalingPoint]) -> Table {
    scaling_table(
        "Weak scaling: per-rank tile fixed, mesh grown with the rank grid (logical cost units)",
        points,
        false,
    )
}

/// The `results/scaling_strong.csv` table.
pub fn strong_table(points: &[ScalingPoint]) -> Table {
    scaling_table(
        "Strong scaling: fixed mesh over growing rank grids (logical cost units)",
        points,
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SweepScale {
        SweepScale {
            base: 8,
            strong: 16,
            eps: 1.0e-10,
            max_iters: 400,
        }
    }

    #[test]
    fn strong_sweep_is_iteration_invariant_and_overlapped() {
        let points = strong_scaling(tiny());
        assert_eq!(points.len(), SCALING_SOLVERS.len() * STRONG_GRIDS.len());
        for solver in SCALING_SOLVERS {
            let rows: Vec<&ScalingPoint> = points.iter().filter(|p| p.solver == solver).collect();
            let baseline = rows[0];
            for p in &rows {
                assert_eq!(
                    p.iterations, baseline.iterations,
                    "{solver:?} {0}x{1}: decomposition changed the iteration count",
                    p.grid.0, p.grid.1
                );
                if p.ranks() > 1 {
                    assert!(
                        p.stats.hidden_elements > 0,
                        "{solver:?} {0}x{1}: no overlap recorded",
                        p.grid.0,
                        p.grid.1
                    );
                }
            }
        }
    }

    #[test]
    fn weak_sweep_grows_mesh_with_ranks() {
        let scale = tiny();
        let points = weak_scaling(scale);
        assert_eq!(points.len(), SCALING_SOLVERS.len() * WEAK_GRIDS.len());
        for p in &points {
            assert_eq!(p.mesh_edge, scale.base * p.grid.0);
            assert!(p.cost_units() > 0.0);
        }
    }

    #[test]
    fn tables_render_with_efficiency_against_one_rank() {
        let points = strong_scaling(tiny());
        let table = strong_table(&points);
        let csv = table.to_csv();
        assert!(csv.contains("efficiency_pct"));
        // every row has a 1-rank baseline of its own solver
        assert_eq!(csv.lines().count(), points.len() + 1);
    }
}
