//! Offline stand-in for the `crossbeam` facade crate.
//!
//! Only the `channel` module subset the workspace uses is provided
//! (`unbounded`, `Sender`, `Receiver`), implemented over `std::sync::mpsc`.

pub mod channel {
    //! Multi-producer channels with the `crossbeam::channel` API shape.

    use std::sync::mpsc;

    /// Error returned when the receiving side has hung up.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream: Debug regardless of whether `T` is Debug.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned when every sender has hung up.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Every sender has hung up.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send `value`, never blocking (the channel is unbounded).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Receive without blocking, if a message is ready.
        pub fn try_recv(&self) -> Option<T> {
            self.inner.try_recv().ok()
        }

        /// Block until a message arrives, all senders disconnect, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_receive_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(41).unwrap());
            std::thread::spawn(move || tx.send(1).unwrap());
            let a = rx.recv().unwrap();
            let b = rx.recv().unwrap();
            assert_eq!(a + b, 42);
        }

        #[test]
        fn recv_fails_after_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
