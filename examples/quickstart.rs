//! Quickstart: solve one TeaLeaf problem with one programming model on
//! one simulated device and print the report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tealeaf_repro::prelude::*;

fn main() {
    // The paper's benchmark problem at a laptop-friendly mesh. The full
    // evaluation uses 4096×4096 (the mesh-convergence point, §4).
    let mut config = TeaConfig::paper_problem(128);
    config.solver = SolverKind::ConjugateGradient;
    config.end_step = 2;
    config.tl_eps = 1.0e-12;

    // Pick a device (Table 2) and a programming model to port with.
    let device = devices::gpu_k20x();
    let report =
        run_simulation(ModelId::Cuda, &device, &config).expect("CUDA supports the K20X (Table 1)");

    println!("TeaLeaf {} on {}", report.model.label(), report.device);
    println!(
        "  mesh                 : {}x{}",
        report.x_cells, report.y_cells
    );
    println!("  solver               : {}", report.solver);
    println!("  steps                : {}", report.steps);
    println!("  iterations           : {}", report.total_iterations);
    println!("  converged            : {}", report.converged);
    println!("  simulated runtime    : {:.4} s", report.sim_seconds());
    println!("  kernels launched     : {}", report.sim.kernels);
    println!(
        "  achieved bandwidth   : {:.1} GB/s",
        report.sim.achieved_bw_gbs()
    );
    println!(
        "  fraction of STREAM   : {:.1} %",
        report.stream_fraction(&device) * 100.0
    );
    println!("  wall (functional)    : {:.3} s", report.wall_seconds);
    let s = report.summary;
    println!(
        "  field summary        : vol={:.1} mass={:.1} ie={:.4} temp={:.4}",
        s.volume, s.mass, s.internal_energy, s.temperature
    );

    // The same problem through a different model must produce the same
    // physics (bit-for-bit — the reproduction's consistency guarantee).
    let kokkos = run_simulation(ModelId::Kokkos, &device, &config).unwrap();
    assert_eq!(kokkos.summary, report.summary, "ports are bit-identical");
    println!(
        "\nKokkos solves the identical problem in {:.4} s ({:+.1} % vs CUDA)",
        kokkos.sim_seconds(),
        (kokkos.sim_seconds() / report.sim_seconds() - 1.0) * 100.0
    );
}
