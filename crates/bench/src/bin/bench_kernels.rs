//! `--save-baseline`-style kernel timing harness.
//!
//! Times the six hottest host-execution kernels against the vendored seed
//! substrate ([`tea_bench::baseline::BaselinePool`]) and writes the
//! medians to `BENCH_kernels.json` so future PRs can track the perf
//! trajectory:
//!
//! ```sh
//! cargo run --release -p tea-bench --bin bench_kernels
//! ```
//!
//! Measurements are wall-clock ns/iter (median over samples), not
//! simulated device time. Two pool configurations are used:
//!
//! * the mesh-sweep kernels run at the production thread count
//!   (`parpool::default_threads()`), because oversubscribing a small host
//!   measures scheduler thrash, not the dispatch path;
//! * the `dispatch_small_*` entries force ≥ 4 workers so the seed's
//!   wake-everyone round-trip is actually on the clock against the
//!   reworked pool's inline fast path (`n < n_threads`). That fast path
//!   is synchronization-free, so the ratio is meaningful on any host —
//!   it is what paper-scale halo-column and reduction-tail regions hit.

use std::time::Instant;

use parpool::{Executor, StaticPool, UnsafeSlice};
use tea_bench::baseline::BaselinePool;
use tea_core::halo::{update_halo, update_halo_batch};
use tea_core::mesh::Mesh2d;
use tealeaf::ports::common::{self, Us};

/// Median wall-clock ns per iteration: calibrate the batch size so one
/// sample takes ≥ 1 ms, then take `samples` samples.
fn median_ns(samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t.elapsed().as_micros() >= 1000 {
            break;
        }
        iters *= 2;
    }
    let mut meds: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    meds.sort_by(|a, b| a.total_cmp(b));
    meds[meds.len() / 2]
}

struct Entry {
    kernel: &'static str,
    cells: usize,
    baseline_ns: f64,
    current_ns: f64,
}

fn field(mesh: &Mesh2d, s: f64) -> Vec<f64> {
    (0..mesh.len())
        .map(|k| 1.0 + s * ((k % 13) as f64))
        .collect()
}

fn bench_mesh(
    cells: usize,
    samples: usize,
    baseline: &BaselinePool,
    pool: &StaticPool,
    out: &mut Vec<Entry>,
) {
    let mesh = Mesh2d::square(cells);
    let j0 = mesh.i0();
    let rows = mesh.y_cells;
    let (p, kx, ky) = (field(&mesh, 0.01), field(&mesh, 0.002), field(&mesh, 0.003));
    let mut w = vec![0.0; mesh.len()];
    let mut scratch = vec![0.0; mesh.len()];

    // 1. cg_calc_w: the 5-point matvec + dot product, the hottest CG kernel.
    out.push(Entry {
        kernel: "cg_calc_w",
        cells,
        baseline_ns: median_ns(samples, || {
            let wv: Us = UnsafeSlice::new(&mut w);
            std::hint::black_box(baseline.run_sum(rows, &|jj| {
                // SAFETY: rows disjoint.
                unsafe { common::row_cg_calc_w(&mesh, j0 + jj, &p, &kx, &ky, &wv) }
            }));
        }),
        current_ns: median_ns(samples, || {
            let wv: Us = UnsafeSlice::new(&mut w);
            std::hint::black_box(pool.run_sum(rows, &|jj| {
                // SAFETY: rows disjoint.
                unsafe { common::row_cg_calc_w(&mesh, j0 + jj, &p, &kx, &ky, &wv) }
            }));
        }),
    });

    // 2. cg_calc_ur: the fused path's reduction sweep.
    out.push(Entry {
        kernel: "cg_calc_ur",
        cells,
        baseline_ns: median_ns(samples, || {
            let u = UnsafeSlice::new(&mut scratch);
            std::hint::black_box(baseline.run_sum(rows, &|jj| {
                let j = j0 + jj;
                let mut acc = 0.0;
                for i in j0..mesh.i1() {
                    let k = common::idx(mesh.width(), i, j);
                    // SAFETY: rows disjoint.
                    unsafe { u.set(k, p[k] * 0.5 + kx[k]) };
                    acc += ky[k] * p[k];
                }
                acc
            }));
        }),
        current_ns: median_ns(samples, || {
            let u = UnsafeSlice::new(&mut scratch);
            std::hint::black_box(pool.run_sum(rows, &|jj| {
                let j = j0 + jj;
                let mut acc = 0.0;
                for i in j0..mesh.i1() {
                    let k = common::idx(mesh.width(), i, j);
                    // SAFETY: rows disjoint.
                    unsafe { u.set(k, p[k] * 0.5 + kx[k]) };
                    acc += ky[k] * p[k];
                }
                acc
            }));
        }),
    });

    // 3. cg_calc_p: the streaming β·p update (non-reduction region).
    out.push(Entry {
        kernel: "cg_calc_p",
        cells,
        baseline_ns: median_ns(samples, || {
            let pv = UnsafeSlice::new(&mut scratch);
            baseline.run(rows, &|jj| {
                // SAFETY: rows disjoint.
                unsafe { common::row_cg_calc_p(&mesh, j0 + jj, 0.3, false, &p, &kx, &pv) };
            });
        }),
        current_ns: median_ns(samples, || {
            let pv = UnsafeSlice::new(&mut scratch);
            pool.run(rows, &|jj| {
                // SAFETY: rows disjoint.
                unsafe { common::row_cg_calc_p(&mesh, j0 + jj, 0.3, false, &p, &kx, &pv) };
            });
        }),
    });

    // 4. halo_x4: a 4-field depth-2 exchange — per-field serial updates
    //    (seed) vs one batched parallel region (current).
    let mut h = [
        field(&mesh, 0.1),
        field(&mesh, 0.2),
        field(&mesh, 0.3),
        field(&mesh, 0.4),
    ];
    out.push(Entry {
        kernel: "halo_x4",
        cells,
        baseline_ns: median_ns(samples, || {
            for f in h.iter_mut() {
                update_halo(&mesh, f, 2);
            }
        }),
        current_ns: median_ns(samples, || {
            let [a, b, c, d] = &mut h;
            let mut fields: Vec<&mut [f64]> = vec![a, b, c, d];
            update_halo_batch(&mesh, &mut fields, 2, pool);
        }),
    });

    // 5. field_summary: the 4-component reduction — allocating per-call
    //    partials (seed) vs the pool's persistent 4-wide scratch.
    let vol = mesh.cell_volume();
    out.push(Entry {
        kernel: "field_summary",
        cells,
        baseline_ns: median_ns(samples, || {
            std::hint::black_box(baseline.run_sum4(rows, &|jj| {
                common::row_summary(&mesh, j0 + jj, &p, &kx, &ky, vol)
            }));
        }),
        current_ns: median_ns(samples, || {
            std::hint::black_box(pool.run_sum4(rows, &|jj| {
                common::row_summary(&mesh, j0 + jj, &p, &kx, &ky, vol)
            }));
        }),
    });
}

fn main() {
    let kernel_threads = parpool::default_threads();
    let dispatch_threads = kernel_threads.max(4);
    let mut entries = Vec::new();

    // 6. dispatch_small: tiny parallel regions — the paper-scale halo
    //    columns and reduction tails. The seed woke every worker through a
    //    mutex+condvar round-trip; the reworked pool runs `n < n_threads`
    //    inline on the posting thread with no synchronization at all.
    {
        let baseline = BaselinePool::new(dispatch_threads);
        let pool = StaticPool::new(dispatch_threads);
        for n in [2usize, 3] {
            entries.push(Entry {
                kernel: if n == 2 {
                    "dispatch_small_2"
                } else {
                    "dispatch_small_3"
                },
                cells: 0,
                baseline_ns: median_ns(21, || {
                    baseline.run(n, &|i| {
                        std::hint::black_box(i);
                    });
                }),
                current_ns: median_ns(21, || {
                    pool.run(n, &|i| {
                        std::hint::black_box(i);
                    });
                }),
            });
        }
    }

    let baseline = BaselinePool::new(kernel_threads);
    let pool = StaticPool::new(kernel_threads);
    bench_mesh(256, 15, &baseline, &pool, &mut entries);
    bench_mesh(4096, 7, &baseline, &pool, &mut entries);

    let mut json = String::from("{\n");
    json.push_str("  \"harness\": \"cargo run --release -p tea-bench --bin bench_kernels\",\n");
    json.push_str("  \"unit\": \"median wall-clock ns per iteration\",\n");
    json.push_str(&format!("  \"kernel_threads\": {kernel_threads},\n"));
    json.push_str(&format!("  \"dispatch_threads\": {dispatch_threads},\n"));
    json.push_str(
        "  \"note\": \"dispatch_small_* = per-region launch+join cost (seed condvar wake vs inline fast path); mesh kernels run at the production thread count, so on a single-core host they measure the sweep itself and demonstrate no regression\",\n",
    );
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let speedup = e.baseline_ns / e.current_ns;
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"cells\": {}, \"baseline_ns\": {:.1}, \"current_ns\": {:.1}, \"speedup\": {:.2}}}{}\n",
            e.kernel,
            e.cells,
            e.baseline_ns,
            e.current_ns,
            speedup,
            if i + 1 == entries.len() { "" } else { "," }
        ));
        println!(
            "{:>16} {:>5}  baseline {:>12.0} ns  current {:>12.0} ns  speedup {:>5.2}x",
            e.kernel, e.cells, e.baseline_ns, e.current_ns, speedup
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_kernels.json", json).expect("cannot write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json");
}
