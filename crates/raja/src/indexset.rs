//! Segments and IndexSets.

/// A contiguous index range `[begin, end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeSegment {
    pub begin: usize,
    pub end: usize,
}

impl RangeSegment {
    /// Range over `[begin, end)`.
    pub fn new(begin: usize, end: usize) -> Self {
        assert!(begin <= end);
        RangeSegment { begin, end }
    }

    /// Iteration count.
    pub fn len(&self) -> usize {
        self.end - self.begin
    }

    /// True for an empty range.
    pub fn is_empty(&self) -> bool {
        self.begin == self.end
    }
}

/// An explicit list of indices (the indirection array of §3.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListSegment {
    indices: Vec<usize>,
}

impl ListSegment {
    /// Wrap a pre-computed indirection list.
    pub fn new(indices: Vec<usize>) -> Self {
        ListSegment { indices }
    }

    /// Build the interior-cell list for a padded `width × height` grid
    /// with halo `h` — the halo-exclusion list the paper's port
    /// pre-computes "earlier in the application".
    pub fn interior_2d(width: usize, height: usize, h: usize) -> Self {
        let mut indices = Vec::with_capacity((width - 2 * h) * (height - 2 * h));
        for j in h..height - h {
            for i in h..width - h {
                indices.push(j * width + i);
            }
        }
        ListSegment { indices }
    }

    /// The raw index list.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Iteration count.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True for an empty list.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

/// Either segment kind, as stored in an [`IndexSet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    Range(RangeSegment),
    List(ListSegment),
}

impl Segment {
    /// Iteration count of the segment.
    pub fn len(&self) -> usize {
        match self {
            Segment::Range(r) => r.len(),
            Segment::List(l) => l.len(),
        }
    }

    /// True when the segment covers no indices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Does this segment fetch through an indirection list?
    pub fn is_indirect(&self) -> bool {
        matches!(self, Segment::List(_))
    }

    /// Index at iteration position `k`.
    #[inline(always)]
    pub fn at(&self, k: usize) -> usize {
        match self {
            Segment::Range(r) => r.begin + k,
            Segment::List(l) => l.indices[k],
        }
    }
}

/// An ordered collection of segments dispatched as one loop — RAJA's
/// "Segment dispatch and execution (Indexsets)" abstraction (§2.3).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexSet {
    segments: Vec<Segment>,
}

impl IndexSet {
    /// An empty index set.
    pub fn new() -> Self {
        IndexSet::default()
    }

    /// Append a range segment.
    pub fn push_range(&mut self, seg: RangeSegment) -> &mut Self {
        self.segments.push(Segment::Range(seg));
        self
    }

    /// Append a list segment.
    pub fn push_list(&mut self, seg: ListSegment) -> &mut Self {
        self.segments.push(Segment::List(seg));
        self
    }

    /// The segments in dispatch order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total iteration count over all segments.
    pub fn len(&self) -> usize {
        self.segments.iter().map(Segment::len).sum()
    }

    /// True when no segment holds any index.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Does any segment use indirection?
    pub fn has_indirection(&self) -> bool {
        self.segments.iter().any(Segment::is_indirect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_segment_basics() {
        let r = RangeSegment::new(3, 9);
        assert_eq!(r.len(), 6);
        assert!(!r.is_empty());
        assert_eq!(Segment::Range(r).at(2), 5);
    }

    #[test]
    fn interior_list_excludes_halo() {
        // 6×5 grid with halo 1 → interior 4×3 = 12 cells
        let l = ListSegment::interior_2d(6, 5, 1);
        assert_eq!(l.len(), 12);
        assert_eq!(l.indices()[0], 6 + 1);
        assert_eq!(*l.indices().last().unwrap(), 3 * 6 + 4);
        // none of the listed indices touch the border
        for &idx in l.indices() {
            let (i, j) = (idx % 6, idx / 6);
            assert!((1..5).contains(&i) && (1..4).contains(&j));
        }
    }

    #[test]
    fn interior_list_row_major_order() {
        let l = ListSegment::interior_2d(5, 5, 2);
        assert_eq!(l.indices(), &[2 * 5 + 2]);
        let l2 = ListSegment::interior_2d(6, 6, 2);
        assert_eq!(l2.indices(), &[14, 15, 20, 21]);
    }

    #[test]
    fn indexset_aggregates() {
        let mut is = IndexSet::new();
        is.push_range(RangeSegment::new(0, 4));
        is.push_list(ListSegment::new(vec![10, 20]));
        assert_eq!(is.len(), 6);
        assert!(is.has_indirection());
        assert_eq!(is.segments().len(), 2);
    }

    #[test]
    fn pure_range_set_has_no_indirection() {
        let mut is = IndexSet::new();
        is.push_range(RangeSegment::new(0, 4));
        assert!(!is.has_indirection());
    }
}
