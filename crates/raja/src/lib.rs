//! # raja-rs
//!
//! A Rust analogue of LLNL's RAJA portability layer as the paper used it
//! (§2.3, §3.4). RAJA's foundational abstractions are reproduced:
//!
//! * **Separate loop body from traversal** — kernels are lambdas over a
//!   cell index; the traversal is chosen by the segment and policy.
//! * **Segments** — [`RangeSegment`] (contiguous) and [`ListSegment`]
//!   (explicit indirection list). The paper's port used list segments to
//!   "exclude the halo boundaries without any explicit conditions or index
//!   calculations in the loop body", at the cost of precluding
//!   vectorization (§4.1) — list-segment dispatch carries the
//!   `indirection` kernel trait, which is exactly that cost.
//! * **IndexSets** — ordered collections of segments dispatched as a unit.
//! * **Execution policies** — [`policy::SeqExec`], [`policy::OmpParallelForExec`],
//!   [`policy::SimdExec`] (the paper's proof-of-concept `RAJA SIMD`
//!   variant that re-enables vectorization on range segments).
//! * **Reductions** — `forall_sum`, the analogue of `RAJA::ReduceSum`,
//!   with index-ordered deterministic joins.
//!
//! ## Example
//!
//! ```
//! use raja_rs::{forall_sum, ListSegment, RajaRuntime, Segment, SeqExec};
//! use parpool::SerialExec;
//! use simdev::{devices, KernelProfile, ModelProfile, SimContext};
//!
//! let ctx = SimContext::new(devices::cpu_xeon_e5_2670_x2(), ModelProfile::ideal("RAJA"), vec![], 0);
//! let rt = RajaRuntime::new(&ctx, &SerialExec);
//! // a halo-excluding indirection list over a 6x6 padded grid (halo 1)
//! let interior = Segment::List(ListSegment::interior_2d(6, 6, 1));
//! let data = vec![1.5; 36];
//! let profile = KernelProfile::reduction("sum", 16, 1, 1);
//! let total = forall_sum::<SeqExec>(&rt, &interior, &profile, &|k| data[k]);
//! assert_eq!(total, 16.0 * 1.5);
//! ```

pub mod forall;
pub mod indexset;
pub mod policy;

pub use forall::{forall, forall_sum, RajaRuntime};
pub use indexset::{IndexSet, ListSegment, RangeSegment, Segment};
pub use policy::{ExecPolicy, OmpParallelForExec, SeqExec, SimdExec};
