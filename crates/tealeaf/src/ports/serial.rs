//! The serial reference port.
//!
//! Plain nested loops over [`common::PortFields`], no parallel substrate,
//! no model crate. Every other port must produce bit-identical fields and
//! reductions to this one — it is the behavioural oracle of the test
//! suite. Its simulated-time profile mirrors the OpenMP C implementation
//! so its reports are still meaningful.

use simdev::{DeviceSpec, SimContext};
use tea_core::config::Coefficient;
use tea_core::halo::FieldId;
use tea_core::summary::Summary;

use crate::kernels::{NormField, TeaLeafPort};
use crate::model_id::ModelId;
use crate::ports::common::{self, profiles, PortFields, Us};
use crate::problem::Problem;

/// Serial reference implementation of every TeaLeaf kernel.
pub struct SerialPort {
    ctx: SimContext,
    f: PortFields,
}

impl SerialPort {
    /// Build the port and install the problem's initial fields.
    pub fn new(device: DeviceSpec, problem: &Problem, seed: u64) -> Self {
        let ctx = common::make_context(ModelId::Serial, device, problem, seed);
        let f = PortFields::new(&problem.mesh, &problem.density, &problem.energy);
        SerialPort { ctx, f }
    }

    fn n(&self) -> u64 {
        profiles::cells(&self.f.mesh)
    }
}

impl TeaLeafPort for SerialPort {
    fn model(&self) -> ModelId {
        ModelId::Serial
    }

    fn context(&self) -> &SimContext {
        &self.ctx
    }

    fn context_mut(&mut self) -> &mut SimContext {
        &mut self.ctx
    }

    fn init_fields(&mut self, coefficient: Coefficient, rx: f64, ry: f64) {
        let mesh = &self.f.mesh;
        self.ctx.launch(&profiles::init_u0(self.n()));
        {
            let (u0, u) = (Us::new(&mut self.f.u0), Us::new(&mut self.f.u));
            for j in mesh.i0()..mesh.j1() {
                // SAFETY: single-threaded; rows written once.
                unsafe { common::row_init_u0(mesh, j, &self.f.density, &self.f.energy, &u0, &u) };
            }
        }
        self.ctx.launch(&profiles::init_coeffs(self.n()));
        {
            let (kx, ky) = (Us::new(&mut self.f.kx), Us::new(&mut self.f.ky));
            for j in mesh.i0()..=mesh.j1() {
                // SAFETY: single-threaded.
                unsafe {
                    common::row_init_coeffs(mesh, j, coefficient, rx, ry, &self.f.density, &kx, &ky)
                };
            }
        }
    }

    fn halo_update(&mut self, fields: &[FieldId], depth: usize) {
        // One launch charge per field (unchanged), one batched update.
        let profile = profiles::halo(&self.f.mesh, depth);
        for _ in fields {
            self.ctx.launch(&profile);
        }
        self.f.halo_batch(fields, depth, &parpool::SerialExec);
    }

    fn cg_init(&mut self, preconditioner: bool) -> f64 {
        let mesh = &self.f.mesh;
        self.ctx
            .launch(&profiles::cg_init(self.n(), preconditioner));
        let (w, r, p, z) = (
            Us::new(&mut self.f.w),
            Us::new(&mut self.f.r),
            Us::new(&mut self.f.p),
            Us::new(&mut self.f.z),
        );
        let mut rro = 0.0;
        for j in mesh.i0()..mesh.j1() {
            // SAFETY: single-threaded.
            rro += unsafe {
                common::row_cg_init(
                    mesh,
                    j,
                    preconditioner,
                    &self.f.u,
                    &self.f.u0,
                    &self.f.kx,
                    &self.f.ky,
                    &w,
                    &r,
                    &p,
                    &z,
                )
            };
        }
        rro
    }

    fn cg_calc_w(&mut self) -> f64 {
        let mesh = &self.f.mesh;
        self.ctx.launch(&profiles::cg_calc_w(self.n()));
        let w = Us::new(&mut self.f.w);
        let mut pw = 0.0;
        for j in mesh.i0()..mesh.j1() {
            // SAFETY: single-threaded.
            pw += unsafe { common::row_cg_calc_w(mesh, j, &self.f.p, &self.f.kx, &self.f.ky, &w) };
        }
        pw
    }

    fn cg_calc_ur(&mut self, alpha: f64, preconditioner: bool) -> f64 {
        let mesh = &self.f.mesh;
        self.ctx
            .launch(&profiles::cg_calc_ur(self.n(), preconditioner));
        let (u, r, z) = (
            Us::new(&mut self.f.u),
            Us::new(&mut self.f.r),
            Us::new(&mut self.f.z),
        );
        let mut rrn = 0.0;
        for j in mesh.i0()..mesh.j1() {
            // SAFETY: single-threaded.
            rrn += unsafe {
                common::row_cg_calc_ur(
                    mesh,
                    j,
                    alpha,
                    preconditioner,
                    &self.f.p,
                    &self.f.w,
                    &self.f.kx,
                    &self.f.ky,
                    &u,
                    &r,
                    &z,
                )
            };
        }
        rrn
    }

    fn cg_calc_p(&mut self, beta: f64, preconditioner: bool) {
        let mesh = &self.f.mesh;
        self.ctx.launch(&profiles::cg_calc_p(self.n()));
        let p = Us::new(&mut self.f.p);
        for j in mesh.i0()..mesh.j1() {
            // SAFETY: single-threaded.
            unsafe {
                common::row_cg_calc_p(mesh, j, beta, preconditioner, &self.f.r, &self.f.z, &p)
            };
        }
    }

    fn cheby_init(&mut self, theta: f64) {
        self.cheby_step(true, theta, 0.0, 0.0);
    }

    fn cheby_iterate(&mut self, alpha: f64, beta: f64) {
        self.cheby_step(false, 0.0, alpha, beta);
    }

    fn ppcg_init_sd(&mut self, theta: f64) {
        let mesh = &self.f.mesh;
        self.ctx.launch(&profiles::ppcg_init_sd(self.n()));
        let sd = Us::new(&mut self.f.sd);
        for j in mesh.i0()..mesh.j1() {
            // SAFETY: single-threaded.
            unsafe { common::row_sd_init(mesh, j, theta, &self.f.r, &sd) };
        }
    }

    fn ppcg_inner(&mut self, alpha: f64, beta: f64) {
        let mesh = &self.f.mesh;
        let (p_w, p_upd) = profiles::fused_pair(
            crate::ir::FusionKind::PpcgInner,
            self.n(),
            false,
            self.lowering_caps(),
        );
        self.ctx.launch(&p_w);
        {
            let w = Us::new(&mut self.f.w);
            for j in mesh.i0()..mesh.j1() {
                // SAFETY: single-threaded.
                unsafe { common::row_ppcg_w(mesh, j, &self.f.sd, &self.f.kx, &self.f.ky, &w) };
            }
        }
        self.ctx.launch(&p_upd);
        let (u, r, sd) = (
            Us::new(&mut self.f.u),
            Us::new(&mut self.f.r),
            Us::new(&mut self.f.sd),
        );
        for j in mesh.i0()..mesh.j1() {
            // SAFETY: single-threaded.
            unsafe { common::row_ppcg_update(mesh, j, alpha, beta, &self.f.w, &u, &r, &sd) };
        }
    }

    fn jacobi_iterate(&mut self) -> f64 {
        let mesh = &self.f.mesh;
        self.ctx.launch(&profiles::jacobi_copy(self.n()));
        {
            let r = Us::new(&mut self.f.r);
            for j in mesh.i0()..mesh.j1() {
                // SAFETY: single-threaded.
                unsafe { common::row_jacobi_copy(mesh, j, &self.f.u, &r) };
            }
        }
        self.ctx.launch(&profiles::jacobi_iterate(self.n()));
        let u = Us::new(&mut self.f.u);
        let mut err = 0.0;
        for j in mesh.i0()..mesh.j1() {
            // SAFETY: single-threaded.
            err += unsafe {
                common::row_jacobi_iterate(
                    mesh, j, &self.f.u0, &self.f.r, &self.f.kx, &self.f.ky, &u,
                )
            };
        }
        err
    }

    fn residual(&mut self) {
        let mesh = &self.f.mesh;
        self.ctx.launch(&profiles::residual(self.n()));
        let r = Us::new(&mut self.f.r);
        for j in mesh.i0()..mesh.j1() {
            // SAFETY: single-threaded.
            unsafe {
                common::row_residual(mesh, j, &self.f.u, &self.f.u0, &self.f.kx, &self.f.ky, &r)
            };
        }
    }

    fn calc_2norm(&mut self, field: NormField) -> f64 {
        let mesh = &self.f.mesh;
        self.ctx.launch(&profiles::norm(self.n()));
        let x = match field {
            NormField::U0 => &self.f.u0,
            NormField::R => &self.f.r,
        };
        let mut norm = 0.0;
        for j in mesh.i0()..mesh.j1() {
            norm += common::row_norm(mesh, j, x);
        }
        norm
    }

    fn finalise(&mut self) {
        let mesh = &self.f.mesh;
        self.ctx.launch(&profiles::finalise(self.n()));
        let energy = Us::new(&mut self.f.energy);
        for j in mesh.i0()..mesh.j1() {
            // SAFETY: single-threaded.
            unsafe { common::row_finalise(mesh, j, &self.f.u, &self.f.density, &energy) };
        }
    }

    fn field_summary(&mut self) -> Summary {
        let mesh = &self.f.mesh;
        self.ctx.launch(&profiles::field_summary(self.n()));
        let vol = mesh.cell_volume();
        let mut acc = [0.0; 4];
        for j in mesh.i0()..mesh.j1() {
            let row = common::row_summary(mesh, j, &self.f.density, &self.f.energy, &self.f.u, vol);
            for k in 0..4 {
                acc[k] += row[k];
            }
        }
        Summary {
            volume: acc[0],
            mass: acc[1],
            internal_energy: acc[2],
            temperature: acc[3],
        }
    }

    fn read_u(&mut self) -> Vec<f64> {
        self.ctx.transfer((self.f.u.len() * 8) as u64);
        self.f.u.clone()
    }

    fn inspect_field(&self, id: FieldId) -> Option<Vec<f64>> {
        Some(self.f.field(id).to_vec())
    }

    fn poke_field(&mut self, id: FieldId, k: usize, value: f64) {
        self.f.field_mut(id)[k] = value;
    }
}

impl SerialPort {
    fn cheby_step(&mut self, first: bool, theta: f64, alpha: f64, beta: f64) {
        let mesh = &self.f.mesh;
        let (p_p, p_u) = profiles::fused_pair(
            crate::ir::FusionKind::ChebyStep,
            self.n(),
            false,
            self.lowering_caps(),
        );
        self.ctx.launch(&p_p);
        {
            let (w, r, p) = (
                Us::new(&mut self.f.w),
                Us::new(&mut self.f.r),
                Us::new(&mut self.f.p),
            );
            for j in mesh.i0()..mesh.j1() {
                // SAFETY: single-threaded.
                unsafe {
                    common::row_cheby_calc_p(
                        mesh, j, first, theta, alpha, beta, &self.f.u, &self.f.u0, &self.f.kx,
                        &self.f.ky, &w, &r, &p,
                    )
                };
            }
        }
        self.ctx.launch(&p_u);
        let u = Us::new(&mut self.f.u);
        for j in mesh.i0()..mesh.j1() {
            // SAFETY: single-threaded.
            unsafe { common::row_add_p_to_u(mesh, j, &self.f.p, &u) };
        }
    }
}
