//! Property-based tests for Views and dispatch.

use proptest::prelude::*;

use kokkos_rs::{ExecutionSpace, Layout, MemorySpaceKind, RangePolicy, TeamPolicy, View};
use parpool::SerialExec;
use simdev::{devices, KernelProfile, ModelProfile, SimContext};

proptest! {
    #[test]
    fn layout_roundtrip(
        dim0 in 1usize..40,
        dim1 in 1usize..40,
        seed in 0u64..1000,
    ) {
        let len = dim0 * dim1;
        let data: Vec<f64> = (0..len).map(|k| ((k as u64 * 2654435761 + seed) % 10007) as f64).collect();
        for layout in [Layout::Right, Layout::Left] {
            let mut v = View::new("v", dim0, dim1, layout, MemorySpaceKind::Device);
            v.fill_from_row_major(&data);
            prop_assert_eq!(v.to_row_major(), data.clone());
        }
    }

    #[test]
    fn layouts_agree_elementwise(dim0 in 1usize..24, dim1 in 1usize..24) {
        let len = dim0 * dim1;
        let data: Vec<f64> = (0..len).map(|k| k as f64 * 0.5).collect();
        let mut right = View::new("r", dim0, dim1, Layout::Right, MemorySpaceKind::Host);
        let mut left = View::new("l", dim0, dim1, Layout::Left, MemorySpaceKind::Device);
        right.fill_from_row_major(&data);
        left.fill_from_row_major(&data);
        for j in 0..dim1 {
            for i in 0..dim0 {
                prop_assert_eq!(right.get(i, j), left.get(i, j));
            }
        }
    }

    #[test]
    fn team_reduce_equals_flat_reduce(rows in 1usize..20, cols in 1usize..20) {
        let ctx = SimContext::new(devices::cpu_xeon_e5_2670_x2(), ModelProfile::ideal("Kokkos"), vec![], 0);
        let space = ExecutionSpace::new(&ctx, &SerialExec);
        let profile = KernelProfile::streaming("k", (rows * cols) as u64, 1, 0, 1);
        let value = |r: usize, c: usize| ((r * 31 + c) as f64).sqrt();
        let team = space.team_parallel_reduce(
            &profile,
            TeamPolicy { league_size: rows, team_size: 4 },
            &|m| m.team_thread_reduce(cols, |c| value(m.league_rank, c)),
        );
        let flat = space.parallel_reduce(&profile, RangePolicy::new(0, rows), &|r| {
            let mut acc = 0.0;
            for c in 0..cols {
                acc += value(r, c);
            }
            acc
        });
        prop_assert_eq!(team, flat);
    }
}
