//! Execution spaces and parallel dispatch.
//!
//! Kokkos distinguishes *where* code runs (execution space) from *what*
//! runs (a functor or lambda over an index range). This module provides
//! the flat [`RangePolicy`] dispatch used by the paper's first Kokkos port
//! and the [`TeamPolicy`] hierarchical parallelism of the `Kokkos HP`
//! variant (paper Figure 7), where a league of teams maps to rows and the
//! team's threads map to columns, re-encoding the halo exclusion into the
//! iteration space instead of a branch.

use parpool::Executor;
use simdev::{KernelProfile, SimContext};

use crate::reducer::{Functor, ReduceFunctor, Reducer};

/// Flat 1-D iteration range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangePolicy {
    pub start: usize,
    pub end: usize,
}

impl RangePolicy {
    /// Range over `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start <= end);
        RangePolicy { start, end }
    }

    /// Number of iterations.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True for an empty range.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Hierarchical policy: `league_size` teams of `team_size` threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TeamPolicy {
    pub league_size: usize,
    pub team_size: usize,
}

/// Handle passed to a team kernel: identifies the team and provides the
/// nested `team_thread_range` loop (the inner lambda of Figure 7).
#[derive(Debug, Clone, Copy)]
pub struct TeamMember {
    pub league_rank: usize,
    pub team_size: usize,
}

impl TeamMember {
    /// Execute `f` for every index in `[0, n)` using the team's threads.
    ///
    /// Functionally the loop is sequential within the team, which keeps
    /// per-team partial sums deterministic; concurrency across teams is
    /// provided by the league dispatch.
    pub fn team_thread_range(&self, n: usize, mut f: impl FnMut(usize)) {
        for i in 0..n {
            f(i);
        }
    }

    /// `team_thread_range` with a per-thread sum reduced into one value —
    /// the "additional code … to critically add the results from each
    /// team" (§3.3).
    pub fn team_thread_reduce(&self, n: usize, mut f: impl FnMut(usize) -> f64) -> f64 {
        let mut acc = 0.0;
        for i in 0..n {
            acc += f(i);
        }
        acc
    }
}

/// An execution space: a host executor plus the simulated-device context
/// all dispatches are charged against.
pub struct ExecutionSpace<'a> {
    ctx: &'a SimContext,
    exec: &'a dyn Executor,
}

impl<'a> ExecutionSpace<'a> {
    /// Bind an execution space to a device context and host executor.
    pub fn new(ctx: &'a SimContext, exec: &'a dyn Executor) -> Self {
        ExecutionSpace { ctx, exec }
    }

    /// The simulated-device context.
    pub fn ctx(&self) -> &SimContext {
        self.ctx
    }

    /// `Kokkos::parallel_for` over a flat range.
    pub fn parallel_for(
        &self,
        profile: &KernelProfile,
        policy: RangePolicy,
        f: &(dyn Fn(usize) + Sync),
    ) {
        self.ctx.launch(profile);
        let start = policy.start;
        self.exec.run(policy.len(), &|k| f(start + k));
    }

    /// `Kokkos::parallel_reduce` with the default sum semantics.
    pub fn parallel_reduce(
        &self,
        profile: &KernelProfile,
        policy: RangePolicy,
        f: &(dyn Fn(usize) -> f64 + Sync),
    ) -> f64 {
        self.ctx.launch(profile);
        let start = policy.start;
        self.exec.run_sum(policy.len(), &|k| f(start + k))
    }

    /// `Kokkos::parallel_reduce` with a custom [`Reducer`].
    ///
    /// Partials are produced per index and joined in index order, so the
    /// result is deterministic for any executor.
    pub fn parallel_reduce_custom<R: Reducer>(
        &self,
        profile: &KernelProfile,
        policy: RangePolicy,
        reducer: &R,
        f: &(dyn Fn(usize) -> R::Value + Sync),
    ) -> R::Value {
        self.ctx.launch(profile);
        let n = policy.len();
        let start = policy.start;
        let mut partials: Vec<Option<R::Value>> = (0..n).map(|_| None).collect();
        {
            let slot = parpool::UnsafeSlice::new(&mut partials);
            self.exec.run(n, &|k| {
                // SAFETY: each index written exactly once.
                unsafe { slot.set(k, Some(f(start + k))) };
            });
        }
        let mut acc = reducer.init();
        for p in partials.into_iter() {
            reducer.join(&mut acc, p.expect("every index produced a partial"));
        }
        acc
    }

    /// `Kokkos::parallel_for` with a functor instead of a lambda — the
    /// verbose pre-CUDA-7.5 style the paper's port had to use (§3.3).
    pub fn parallel_for_functor<F: Functor>(
        &self,
        profile: &KernelProfile,
        policy: RangePolicy,
        functor: &F,
    ) {
        self.parallel_for(profile, policy, &|i| functor.operator(i));
    }

    /// `Kokkos::parallel_reduce` with a reducing functor.
    pub fn parallel_reduce_functor<F: ReduceFunctor>(
        &self,
        profile: &KernelProfile,
        policy: RangePolicy,
        functor: &F,
    ) -> f64 {
        self.parallel_reduce(profile, policy, &|i| functor.operator(i))
    }

    /// Hierarchical `parallel_for` over a league of teams.
    pub fn team_parallel_for(
        &self,
        profile: &KernelProfile,
        policy: TeamPolicy,
        f: &(dyn Fn(TeamMember) + Sync),
    ) {
        self.ctx.launch(profile);
        let team_size = policy.team_size;
        self.exec.run(policy.league_size, &|league_rank| {
            f(TeamMember {
                league_rank,
                team_size,
            });
        });
    }

    /// Hierarchical `parallel_reduce`: one partial per team, joined in
    /// league order.
    pub fn team_parallel_reduce(
        &self,
        profile: &KernelProfile,
        policy: TeamPolicy,
        f: &(dyn Fn(TeamMember) -> f64 + Sync),
    ) -> f64 {
        self.ctx.launch(profile);
        let team_size = policy.team_size;
        self.exec.run_sum(policy.league_size, &|league_rank| {
            f(TeamMember {
                league_rank,
                team_size,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reducer::ArraySumReducer;
    use parpool::SerialExec;
    use simdev::{devices, ModelProfile, SimContext};

    fn ctx() -> SimContext {
        SimContext::new(
            devices::cpu_xeon_e5_2670_x2(),
            ModelProfile::ideal("Kokkos"),
            vec![],
            1,
        )
    }

    fn profile(n: u64) -> KernelProfile {
        KernelProfile::streaming("test_kernel", n, 1, 1, 1)
    }

    #[test]
    fn parallel_for_covers_range() {
        let ctx = ctx();
        let space = ExecutionSpace::new(&ctx, &SerialExec);
        let mut data = vec![0.0; 10];
        {
            let slot = parpool::UnsafeSlice::new(&mut data);
            space.parallel_for(&profile(6), RangePolicy::new(2, 8), &|i| unsafe {
                slot.set(i, i as f64)
            });
        }
        assert_eq!(data, vec![0., 0., 2., 3., 4., 5., 6., 7., 0., 0.]);
        assert_eq!(ctx.clock.snapshot().kernels, 1);
    }

    #[test]
    fn parallel_reduce_sums_range() {
        let ctx = ctx();
        let space = ExecutionSpace::new(&ctx, &SerialExec);
        let s = space.parallel_reduce(&profile(5), RangePolicy::new(0, 5), &|i| i as f64);
        assert_eq!(s, 10.0);
    }

    #[test]
    fn custom_reducer_multi_variable() {
        let ctx = ctx();
        let space = ExecutionSpace::new(&ctx, &SerialExec);
        let [a, b] = space.parallel_reduce_custom(
            &profile(4),
            RangePolicy::new(0, 4),
            &ArraySumReducer::<2>,
            &|i| [i as f64, (i * i) as f64],
        );
        assert_eq!(a, 6.0);
        assert_eq!(b, 14.0);
    }

    #[test]
    fn team_dispatch_covers_2d() {
        let ctx = ctx();
        let space = ExecutionSpace::new(&ctx, &SerialExec);
        let (rows, cols) = (4, 5);
        let mut grid = vec![0.0; rows * cols];
        {
            let slot = parpool::UnsafeSlice::new(&mut grid);
            space.team_parallel_for(
                &profile((rows * cols) as u64),
                TeamPolicy {
                    league_size: rows,
                    team_size: 4,
                },
                &|member| {
                    member.team_thread_range(cols, |c| {
                        // SAFETY: league ranks are distinct rows.
                        unsafe { slot.set(member.league_rank * cols + c, 1.0) };
                    });
                },
            );
        }
        assert!(grid.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn team_reduce_matches_flat() {
        let ctx = ctx();
        let space = ExecutionSpace::new(&ctx, &SerialExec);
        let (rows, cols) = (8, 16);
        let value = |r: usize, c: usize| ((r * cols + c) as f64).sqrt();
        let team = space.team_parallel_reduce(
            &profile((rows * cols) as u64),
            TeamPolicy {
                league_size: rows,
                team_size: 4,
            },
            &|m| m.team_thread_reduce(cols, |c| value(m.league_rank, c)),
        );
        // serial row-ordered reference
        let mut reference = 0.0;
        for r in 0..rows {
            let mut row = 0.0;
            for c in 0..cols {
                row += value(r, c);
            }
            reference += row;
        }
        assert_eq!(team, reference);
    }

    #[test]
    fn functor_dispatch_matches_lambda() {
        struct Axpy<'a> {
            alpha: f64,
            x: &'a [f64],
            y: parpool::UnsafeSlice<'a, f64>,
        }
        impl Functor for Axpy<'_> {
            fn operator(&self, i: usize) {
                // SAFETY: each index written once.
                unsafe { self.y.set(i, self.alpha * self.x[i] + self.y.get(i)) };
            }
        }
        let ctx = ctx();
        let space = ExecutionSpace::new(&ctx, &SerialExec);
        let x: Vec<f64> = (0..32).map(|k| k as f64).collect();
        let mut y_functor = vec![1.0; 32];
        let mut y_lambda = vec![1.0; 32];
        {
            let functor = Axpy {
                alpha: 0.5,
                x: &x,
                y: parpool::UnsafeSlice::new(&mut y_functor),
            };
            space.parallel_for_functor(&profile(32), RangePolicy::new(0, 32), &functor);
        }
        {
            let y = parpool::UnsafeSlice::new(&mut y_lambda);
            space.parallel_for(&profile(32), RangePolicy::new(0, 32), &|i| {
                // SAFETY: each index written once.
                unsafe { y.set(i, 0.5 * x[i] + y.get(i)) };
            });
        }
        assert_eq!(y_functor, y_lambda);
    }

    #[test]
    fn reduce_functor_matches_lambda() {
        struct Dot<'a> {
            a: &'a [f64],
            b: &'a [f64],
        }
        impl ReduceFunctor for Dot<'_> {
            fn operator(&self, i: usize) -> f64 {
                self.a[i] * self.b[i]
            }
        }
        let ctx = ctx();
        let space = ExecutionSpace::new(&ctx, &SerialExec);
        let a: Vec<f64> = (0..100).map(|k| (k as f64).sin()).collect();
        let b: Vec<f64> = (0..100).map(|k| (k as f64).cos()).collect();
        let functor_val = space.parallel_reduce_functor(
            &profile(100),
            RangePolicy::new(0, 100),
            &Dot { a: &a, b: &b },
        );
        let lambda_val =
            space.parallel_reduce(&profile(100), RangePolicy::new(0, 100), &|i| a[i] * b[i]);
        assert_eq!(functor_val, lambda_val);
    }

    #[test]
    fn parallel_pool_agrees_with_serial() {
        let ctx = ctx();
        let pool = parpool::StaticPool::new(4);
        let space_pool = ExecutionSpace::new(&ctx, &pool);
        let space_serial = ExecutionSpace::new(&ctx, &SerialExec);
        let f = |i: usize| (i as f64 * 0.1).sin();
        let a = space_pool.parallel_reduce(&profile(1000), RangePolicy::new(0, 1000), &f);
        let b = space_serial.parallel_reduce(&profile(1000), RangePolicy::new(0, 1000), &f);
        assert_eq!(a, b);
    }
}
