//! Criterion micro-benchmarks of the real (host) execution substrates:
//! stencil and streaming kernels through each pool, deterministic
//! reductions, halo exchange, and pool dispatch overhead.
//!
//! These measure *wall time* of the Rust implementations themselves (not
//! simulated device time): the data-parallel machinery under every port.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use parpool::{Executor, SerialExec, StaticPool, StealPool, UnsafeSlice};
use tea_bench::baseline::BaselinePool;
use tea_core::halo::{update_halo, update_halo_batch};
use tea_core::mesh::Mesh2d;
use tealeaf::ports::common::{self, Us};

fn fields(mesh: &Mesh2d) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
    let len = mesh.len();
    let gen = |s: f64| {
        (0..len)
            .map(|k| 1.0 + s * ((k % 13) as f64))
            .collect::<Vec<f64>>()
    };
    (gen(0.01), gen(0.002), gen(0.003), vec![0.0; len])
}

fn bench_matvec(c: &mut Criterion) {
    let mesh = Mesh2d::square(512);
    let (p, kx, ky, mut w) = fields(&mesh);
    let mut group = c.benchmark_group("matvec_5pt");
    group.sample_size(20);
    group.throughput(Throughput::Elements(mesh.interior_len() as u64));

    let serial = SerialExec;
    let static_pool = StaticPool::new(parpool::default_threads());
    let steal_pool = StealPool::new(parpool::default_threads());
    let execs: [(&str, &dyn Executor); 3] = [
        ("serial", &serial),
        ("static_pool", &static_pool),
        ("steal_pool", &steal_pool),
    ];

    for (name, exec) in execs {
        group.bench_with_input(BenchmarkId::from_parameter(name), &exec, |b, exec| {
            let j0 = mesh.i0();
            b.iter(|| {
                let pw = {
                    let wv: Us = UnsafeSlice::new(&mut w);
                    exec.run_sum(mesh.y_cells, &|jj| {
                        // SAFETY: rows disjoint.
                        unsafe { common::row_cg_calc_w(&mesh, j0 + jj, &p, &kx, &ky, &wv) }
                    })
                };
                black_box(pw)
            });
        });
    }
    group.finish();
}

fn bench_streaming_update(c: &mut Criterion) {
    let mesh = Mesh2d::square(512);
    let (r, z, _ky, mut p) = fields(&mesh);
    let mut group = c.benchmark_group("axpy_cg_calc_p");
    group.sample_size(20);
    group.throughput(Throughput::Elements(mesh.interior_len() as u64));
    let static_pool = StaticPool::new(parpool::default_threads());
    group.bench_function("static_pool", |b| {
        let j0 = mesh.i0();
        b.iter(|| {
            let pv: Us = UnsafeSlice::new(&mut p);
            static_pool.run(mesh.y_cells, &|jj| {
                // SAFETY: rows disjoint.
                unsafe { common::row_cg_calc_p(&mesh, j0 + jj, 0.3, false, &r, &z, &pv) };
            });
        });
    });
    group.finish();
}

fn bench_halo(c: &mut Criterion) {
    let mut group = c.benchmark_group("halo_update");
    group.sample_size(30);
    for cells in [128usize, 512] {
        let mesh = Mesh2d::square(cells);
        let mut field = vec![1.0; mesh.len()];
        group.bench_with_input(BenchmarkId::from_parameter(cells), &mesh, |b, mesh| {
            b.iter(|| update_halo(mesh, black_box(&mut field), 2));
        });
    }
    group.finish();
}

fn bench_dispatch_overhead(c: &mut Criterion) {
    // Cost of one small parallel region — the fork/join overhead the
    // paper's directive models multiply by their target-region count.
    let mut group = c.benchmark_group("dispatch_overhead");
    group.sample_size(30);
    let static_pool = StaticPool::new(parpool::default_threads());
    let steal_pool = StealPool::new(parpool::default_threads());
    group.bench_function("static_pool_64", |b| {
        b.iter(|| {
            static_pool.run(64, &|i| {
                black_box(i);
            })
        });
    });
    group.bench_function("steal_pool_64", |b| {
        b.iter(|| {
            steal_pool.run(64, &|i| {
                black_box(i);
            })
        });
    });
    group.finish();
}

fn bench_reduction_determinism_cost(c: &mut Criterion) {
    // The ordered per-row reduction vs a plain serial loop: the price of
    // bit-reproducibility.
    let mesh = Mesh2d::square(512);
    let (x, _, _, _) = fields(&mesh);
    let mut group = c.benchmark_group("norm_reduction");
    group.sample_size(20);
    group.throughput(Throughput::Elements(mesh.interior_len() as u64));
    group.bench_function("row_ordered_serial", |b| {
        let j0 = mesh.i0();
        b.iter(|| {
            let mut acc = 0.0;
            for jj in 0..mesh.y_cells {
                acc += common::row_norm(&mesh, j0 + jj, &x);
            }
            black_box(acc)
        });
    });
    let static_pool = StaticPool::new(parpool::default_threads());
    group.bench_function("row_ordered_pool", |b| {
        let j0 = mesh.i0();
        b.iter(|| {
            black_box(static_pool.run_sum(mesh.y_cells, &|jj| common::row_norm(&mesh, j0 + jj, &x)))
        });
    });
    group.finish();
}

fn bench_seed_vs_current(c: &mut Criterion) {
    // Before/after the fork-join rework: the vendored seed substrate
    // (`BaselinePool`: mutex+condvar wake per region, allocating
    // reductions) against the reworked `StaticPool` (inline fast path for
    // `n < n_threads`, spin-then-park barrier, persistent reduction
    // scratch). The `dispatch_3` pair uses ≥ 4 workers so the seed's wake
    // round-trip is actually exercised; the mesh pairs run at the
    // production thread count.
    let mut group = c.benchmark_group("seed_vs_current");
    group.sample_size(20);

    let n_dispatch = parpool::default_threads().max(4);
    {
        let seed = BaselinePool::new(n_dispatch);
        let current = StaticPool::new(n_dispatch);
        group.bench_function("dispatch_3/seed", |b| {
            b.iter(|| {
                seed.run(3, &|i| {
                    black_box(i);
                })
            });
        });
        group.bench_function("dispatch_3/current", |b| {
            b.iter(|| {
                current.run(3, &|i| {
                    black_box(i);
                })
            });
        });
    }

    let mesh = Mesh2d::square(256);
    let (p, kx, ky, mut w) = fields(&mesh);
    let j0 = mesh.i0();
    let seed = BaselinePool::new(parpool::default_threads());
    let current = StaticPool::new(parpool::default_threads());

    group.bench_function("matvec_256/seed", |b| {
        b.iter(|| {
            let wv: Us = UnsafeSlice::new(&mut w);
            black_box(seed.run_sum(mesh.y_cells, &|jj| {
                // SAFETY: rows disjoint.
                unsafe { common::row_cg_calc_w(&mesh, j0 + jj, &p, &kx, &ky, &wv) }
            }))
        });
    });
    group.bench_function("matvec_256/current", |b| {
        b.iter(|| {
            let wv: Us = UnsafeSlice::new(&mut w);
            black_box(current.run_sum(mesh.y_cells, &|jj| {
                // SAFETY: rows disjoint.
                unsafe { common::row_cg_calc_w(&mesh, j0 + jj, &p, &kx, &ky, &wv) }
            }))
        });
    });

    let mut h: Vec<Vec<f64>> = (0..4).map(|_| vec![1.0; mesh.len()]).collect();
    group.bench_function("halo_x4_256/seed", |b| {
        b.iter(|| {
            for f in h.iter_mut() {
                update_halo(&mesh, f, 2);
            }
        });
    });
    group.bench_function("halo_x4_256/current", |b| {
        b.iter(|| {
            let mut views: Vec<&mut [f64]> = h.iter_mut().map(|f| f.as_mut_slice()).collect();
            update_halo_batch(&mesh, &mut views, 2, &current);
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matvec,
    bench_streaming_update,
    bench_halo,
    bench_dispatch_overhead,
    bench_reduction_determinism_cost,
    bench_seed_vs_current
);
criterion_main!(benches);
