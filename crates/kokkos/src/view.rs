//! Kokkos-style `View` containers.
//!
//! A `View` is a labelled, shape-aware array bound to a *memory space*
//! (host or device) with a *layout* (row- or column-major). The paper's
//! port stores every TeaLeaf field in a device `View` and moves data with
//! "the Kokkos abstract copy functions" (§3.3) — reproduced here by
//! [`deep_copy`], which charges simulated transfer time when the copy
//! crosses spaces.

use simdev::SimContext;

/// Which memory space a view lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemorySpaceKind {
    Host,
    Device,
}

/// Data layout — Kokkos picks `LayoutRight` (row-major) for CPUs and
/// `LayoutLeft` (column-major, coalesced) for GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    Right,
    Left,
}

/// A 2-D view of `f64` with label, layout and memory space.
#[derive(Debug, Clone, PartialEq)]
pub struct View {
    label: String,
    data: Vec<f64>,
    dim0: usize,
    dim1: usize,
    layout: Layout,
    space: MemorySpaceKind,
}

impl View {
    /// Allocate a zero-initialised view (Kokkos zero-fills on allocation).
    pub fn new(
        label: &str,
        dim0: usize,
        dim1: usize,
        layout: Layout,
        space: MemorySpaceKind,
    ) -> Self {
        View {
            label: label.to_string(),
            data: vec![0.0; dim0 * dim1],
            dim0,
            dim1,
            layout,
            space,
        }
    }

    /// Device view with the layout Kokkos would pick for the space.
    pub fn device(label: &str, dim0: usize, dim1: usize) -> Self {
        View::new(label, dim0, dim1, Layout::Left, MemorySpaceKind::Device)
    }

    /// Host mirror with host layout.
    pub fn host(label: &str, dim0: usize, dim1: usize) -> Self {
        View::new(label, dim0, dim1, Layout::Right, MemorySpaceKind::Host)
    }

    /// The view's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Extents `(dim0, dim1)` — `dim0` is the x/fast index by convention.
    pub fn extents(&self) -> (usize, usize) {
        (self.dim0, self.dim1)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the view holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes (for transfer costing).
    pub fn bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f64>()) as u64
    }

    /// Memory space of this view.
    pub fn space(&self) -> MemorySpaceKind {
        self.space
    }

    /// Layout of this view.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Map logical `(i, j)` to the linear storage index per the layout.
    #[inline(always)]
    pub fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.dim0 && j < self.dim1);
        match self.layout {
            Layout::Right => j * self.dim0 + i,
            Layout::Left => i * self.dim1 + j,
        }
    }

    /// Read element `(i, j)`.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[self.index(i, j)]
    }

    /// Write element `(i, j)`.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        let idx = self.index(i, j);
        self.data[idx] = v;
    }

    /// Borrow the raw storage (layout order).
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the raw storage.
    pub fn raw_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Copy out in logical row-major order regardless of layout — used to
    /// hand results back to layout-agnostic host code.
    pub fn to_row_major(&self) -> Vec<f64> {
        match self.layout {
            Layout::Right => self.data.clone(),
            Layout::Left => {
                let mut out = vec![0.0; self.data.len()];
                for j in 0..self.dim1 {
                    for i in 0..self.dim0 {
                        out[j * self.dim0 + i] = self.get(i, j);
                    }
                }
                out
            }
        }
    }

    /// Fill from logical row-major data.
    pub fn fill_from_row_major(&mut self, src: &[f64]) {
        assert_eq!(src.len(), self.data.len());
        match self.layout {
            Layout::Right => self.data.copy_from_slice(src),
            Layout::Left => {
                for j in 0..self.dim1 {
                    for i in 0..self.dim0 {
                        let v = src[j * self.dim0 + i];
                        self.set(i, j, v);
                    }
                }
            }
        }
    }
}

/// Kokkos `deep_copy`: copy `src` into `dst`, charging a simulated
/// transfer when the copy crosses memory spaces on an offload device.
///
/// # Panics
/// Panics if extents differ.
pub fn deep_copy(ctx: &SimContext, dst: &mut View, src: &View) {
    assert_eq!(
        dst.extents(),
        src.extents(),
        "deep_copy requires matching extents"
    );
    if dst.layout == src.layout {
        dst.data.copy_from_slice(&src.data);
    } else {
        let rm = src.to_row_major();
        dst.fill_from_row_major(&rm);
    }
    if dst.space != src.space {
        ctx.transfer(src.bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdev::{devices, ModelProfile, SimContext};

    fn ctx_gpu() -> SimContext {
        SimContext::new(
            devices::gpu_k20x(),
            ModelProfile::ideal("Kokkos"),
            vec![],
            1,
        )
    }

    #[test]
    fn layouts_index_differently() {
        let r = View::new("r", 4, 3, Layout::Right, MemorySpaceKind::Host);
        let l = View::new("l", 4, 3, Layout::Left, MemorySpaceKind::Device);
        assert_eq!(r.index(1, 2), 2 * 4 + 1);
        assert_eq!(l.index(1, 2), 3 + 2);
    }

    #[test]
    fn get_set_respect_layout() {
        for layout in [Layout::Right, Layout::Left] {
            let mut v = View::new("v", 5, 4, layout, MemorySpaceKind::Host);
            v.set(3, 2, 7.5);
            assert_eq!(v.get(3, 2), 7.5);
        }
    }

    #[test]
    fn row_major_roundtrip_across_layouts() {
        let src: Vec<f64> = (0..20).map(|x| x as f64).collect();
        let mut left = View::new("l", 5, 4, Layout::Left, MemorySpaceKind::Device);
        left.fill_from_row_major(&src);
        assert_eq!(left.to_row_major(), src);
        // logical element (i=2, j=3) is row-major index 3*5+2
        assert_eq!(left.get(2, 3), 17.0);
    }

    #[test]
    fn deep_copy_cross_space_charges_transfer() {
        let ctx = ctx_gpu();
        let host = {
            let mut h = View::host("h", 16, 16);
            h.fill_from_row_major(&vec![2.5; 256]);
            h
        };
        let mut dev = View::device("d", 16, 16);
        deep_copy(&ctx, &mut dev, &host);
        assert_eq!(dev.get(3, 3), 2.5);
        let snap = ctx.clock.snapshot();
        assert_eq!(snap.transfers, 1);
        assert_eq!(snap.transfer_bytes, 256 * 8);
    }

    #[test]
    fn deep_copy_same_space_is_free() {
        let ctx = ctx_gpu();
        let a = View::device("a", 8, 8);
        let mut b = View::device("b", 8, 8);
        deep_copy(&ctx, &mut b, &a);
        assert_eq!(ctx.clock.snapshot().transfers, 0);
    }

    #[test]
    #[should_panic]
    fn deep_copy_extent_mismatch() {
        let ctx = ctx_gpu();
        let a = View::device("a", 8, 8);
        let mut b = View::device("b", 4, 4);
        deep_copy(&ctx, &mut b, &a);
    }
}
