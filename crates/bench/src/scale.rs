//! Experiment scale selection (environment-driven).

use tea_core::config::{SolverKind, TeaConfig};
use tealeaf::driver::TEA_DEFAULT_SEED;

/// Mesh/step/tolerance scale for the experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    pub cells: usize,
    pub steps: usize,
    pub eps: f64,
    /// Mesh edges for the Figure 11 even-step sweep.
    pub sweep_max: usize,
    /// Seed for every stochastic cost term (the OpenCL CPU enqueue
    /// jitter) in the figure runs. Fixed by default so committed numbers
    /// reproduce bit-for-bit; override with `TEA_SEED` to check that a
    /// conclusion is not an artefact of one jitter draw.
    pub seed: u64,
}

impl Scale {
    /// Resolve from the environment (see crate docs for the variables).
    pub fn from_env() -> Self {
        if std::env::var("TEA_PAPER_SCALE").is_ok_and(|v| v == "1") {
            return Scale::paper();
        }
        let get = |k: &str, d: f64| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or(d)
        };
        Scale {
            cells: get("TEA_CELLS", 256.0) as usize,
            steps: get("TEA_STEPS", 2.0) as usize,
            eps: get("TEA_EPS", 1.0e-12),
            sweep_max: get("TEA_SWEEP_MAX", 625.0) as usize,
            seed: std::env::var("TEA_SEED")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(TEA_DEFAULT_SEED),
        }
    }

    /// The paper's full scale (§4: 4096² mesh-convergence point).
    pub fn paper() -> Self {
        Scale {
            cells: 4096,
            steps: 10,
            eps: 1.0e-15,
            sweep_max: 1225,
            seed: TEA_DEFAULT_SEED,
        }
    }

    /// Reduced scale for fast CI runs and tests.
    pub fn small() -> Self {
        Scale {
            cells: 96,
            steps: 1,
            eps: 1.0e-10,
            sweep_max: 250,
            seed: TEA_DEFAULT_SEED,
        }
    }

    /// Problem configuration for one solver at this scale.
    pub fn config(&self, solver: SolverKind) -> TeaConfig {
        let mut cfg = TeaConfig::paper_problem(self.cells);
        cfg.solver = solver;
        cfg.end_step = self.steps;
        cfg.tl_eps = self.eps;
        // Keep the paper's tl_ch_cg_presteps = 30: the Lanczos eigenvalue
        // estimate needs that many iterations to bracket λmax reliably —
        // with fewer, Chebyshev's interval misses the top of the spectrum
        // and PPCG's inner smoothing can diverge. (On reduced meshes this
        // makes the presteps a larger *fraction* of Chebyshev/PPCG runs
        // than at 4096², which slightly inflates any CG-specific model
        // quirk in those columns; EXPERIMENTS.md notes this.)
        cfg
    }

    /// Emulate the paper's convergence-mesh bandwidth regime on a reduced
    /// functional mesh: cache capacity and every fixed per-launch cost are
    /// scaled by the cell ratio `(cells/4096)²`, preserving the paper
    /// mesh's bytes-to-overhead balance (at 4096² TeaLeaf is DRAM-resident
    /// and launch overheads are amortised — §5: overheads "are hidden as
    /// the amount of computation and data processing is increased").
    ///
    /// Figures 8–10 and 12 use the scaled device; Figure 11 deliberately
    /// does not (small-mesh overheads are its subject).
    pub fn regime_device(&self, device: &simdev::DeviceSpec) -> simdev::DeviceSpec {
        if self.cells >= 4096 {
            return device.clone();
        }
        let factor = (self.cells as f64 / 4096.0).powi(2);
        let mut d = device.clone();
        d.llc_bytes = (d.llc_bytes as f64 * factor) as u64;
        d.overhead_scale = factor;
        // One-off whole-mesh transfers shrink only linearly with the mesh
        // while kernel time shrinks with cells × iterations; rescale the
        // link so the transfer:kernel balance matches the paper mesh
        // (iterations ∝ edge, so the residual imbalance is edge × steps).
        d.pcie_bw_gbs *= (4096.0 / self.cells as f64) * (10.0 / self.steps.max(1) as f64);
        d
    }

    /// The Figure 11 "even-step mesh increment" sizes: multiples of 125 up
    /// to `sweep_max`, ending exactly at the cap (the paper sweeps to
    /// 1225²  ≈ 15·10⁵ cells).
    pub fn sweep_sizes(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = (1..)
            .map(|k| k * 125)
            .take_while(|&s| s < self.sweep_max)
            .collect();
        sizes.push(self.sweep_max);
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_evaluation_section() {
        let s = Scale::paper();
        assert_eq!(s.cells, 4096);
        assert_eq!(s.steps, 10);
        assert_eq!(s.eps, 1.0e-15);
        assert_eq!(s.sweep_max, 1225);
    }

    #[test]
    fn sweep_ends_at_cap() {
        let s = Scale {
            cells: 0,
            steps: 0,
            eps: 1.0,
            sweep_max: 625,
            seed: TEA_DEFAULT_SEED,
        };
        assert_eq!(s.sweep_sizes(), vec![125, 250, 375, 500, 625]);
        let p = Scale::paper();
        let sizes = p.sweep_sizes();
        assert_eq!(*sizes.last().unwrap(), 1225);
        assert_eq!(sizes[0], 125);
    }

    #[test]
    fn config_carries_scale() {
        let s = Scale::small();
        let cfg = s.config(SolverKind::Ppcg);
        assert_eq!(cfg.x_cells, 96);
        assert_eq!(cfg.end_step, 1);
        assert_eq!(cfg.solver, SolverKind::Ppcg);
    }
}

#[cfg(test)]
mod regime_tests {
    use super::*;
    use simdev::devices;

    #[test]
    fn regime_scales_fixed_costs_by_cell_ratio() {
        let s = Scale {
            cells: 256,
            steps: 2,
            eps: 1e-12,
            sweep_max: 0,
            seed: TEA_DEFAULT_SEED,
        };
        let gpu = devices::gpu_k20x();
        let regime = s.regime_device(&gpu);
        let factor = (256.0f64 / 4096.0).powi(2);
        assert!((regime.overhead_scale - factor).abs() < 1e-15);
        assert_eq!(regime.llc_bytes, (gpu.llc_bytes as f64 * factor) as u64);
        // bandwidths untouched — they are the physics, not the regime
        assert_eq!(regime.stream_bw_gbs, gpu.stream_bw_gbs);
        assert_eq!(regime.peak_bw_gbs, gpu.peak_bw_gbs);
        // the PCIe rebalance compensates the one-off whole-mesh transfers
        assert!(regime.pcie_bw_gbs > gpu.pcie_bw_gbs);
    }

    #[test]
    fn paper_scale_is_identity() {
        let s = Scale::paper();
        let gpu = devices::gpu_k20x();
        assert_eq!(s.regime_device(&gpu), gpu);
    }

    #[test]
    fn env_scale_defaults() {
        // no env vars set in the test environment → defaults
        let s = Scale::from_env();
        assert!(s.cells >= 64);
        assert!(s.steps >= 1);
        assert!(s.eps > 0.0);
        assert_eq!(s.seed, TEA_DEFAULT_SEED, "unset TEA_SEED uses the default");
    }
}
