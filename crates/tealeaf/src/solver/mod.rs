//! The iterative solvers (paper §1.1): CG, Chebyshev, PPCG and Jacobi.
//!
//! Each solver is written once against [`crate::kernels::TeaLeafPort`] —
//! ports supply kernels, solvers supply the logic, "to ensure that each of
//! the programming models were objectively compared" (§3).
//!
//! ## Convergence criterion
//!
//! Following the reference implementation, convergence is tested on the
//! *squared* residual norm relative to its initial value:
//! `rrn ≤ tl_eps · rro₀`. All solvers share the same `tl_eps` and
//! `tl_max_iters` parameters from the deck.

pub mod cg;
pub mod chebyshev;
pub mod jacobi;
pub mod ppcg;

use tea_core::config::{SolverKind, TeaConfig};

use crate::kernels::TeaLeafPort;
use crate::resilience::{self, RecoveryEvent, SolverHealth};

/// Result of one solve (one timestep's implicit solve).
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOutcome {
    /// Total solver iterations (for Chebyshev/PPCG this includes the CG
    /// eigenvalue-estimation presteps; for PPCG inner smoothing steps are
    /// *not* counted as iterations, matching how TeaLeaf reports).
    pub iterations: usize,
    pub converged: bool,
    /// Final squared residual measure.
    pub final_rrn: f64,
    /// Initial squared residual measure the tolerance was relative to.
    pub initial: f64,
    /// Eigenvalue bounds estimated during the solve (Chebyshev/PPCG).
    pub eigenvalues: Option<(f64, f64)>,
    /// Sentinel trips observed during the solve (empty on healthy runs).
    pub health: Vec<SolverHealth>,
    /// Recovery actions taken during the solve (empty on healthy runs).
    pub recoveries: Vec<RecoveryEvent>,
}

impl SolveOutcome {
    /// An outcome with the numeric results and no health events — what
    /// every solver constructs before the resilience layer annotates it.
    pub(crate) fn clean(
        iterations: usize,
        converged: bool,
        final_rrn: f64,
        initial: f64,
        eigenvalues: Option<(f64, f64)>,
    ) -> Self {
        SolveOutcome {
            iterations,
            converged,
            final_rrn,
            initial,
            eigenvalues,
            health: Vec::new(),
            recoveries: Vec::new(),
        }
    }
}

/// Dispatch to the configured solver. With `tl_resilience` on (the
/// default) the solve runs under the recovery harness: sentinel trips
/// roll back to checkpoints and degrade along the fallback chain; on
/// healthy runs the harness is numerically inert, so results are
/// bit-identical to a plain dispatch.
pub fn solve(port: &mut dyn TeaLeafPort, config: &TeaConfig) -> SolveOutcome {
    if config.tl_resilience {
        resilience::run_with_recovery(port, config)
    } else {
        solve_once(port, config)
    }
}

/// Raw single-attempt dispatch: run the configured solver exactly once,
/// with in-phase sentinels/rollback but no fallback chain. Each attempt
/// is one `solve` telemetry span, so retries and fallbacks show up as
/// sibling spans under the step.
pub fn solve_once(port: &mut dyn TeaLeafPort, config: &TeaConfig) -> SolveOutcome {
    let ctx = port.context();
    let tel = ctx.telemetry().clone();
    let span = tel.open_span(
        "solve",
        format_args!("{}", config.solver.name()),
        ctx.clock.seconds(),
    );
    let outcome = match config.solver {
        SolverKind::Jacobi => jacobi::solve(port, config),
        SolverKind::ConjugateGradient => cg::solve(port, config),
        SolverKind::Chebyshev => chebyshev::solve(port, config),
        SolverKind::Ppcg => ppcg::solve(port, config),
    };
    tel.close_span(span, port.context().clock.seconds());
    outcome
}
