//! The schedule fuzzer: adversarial chunk orderings over the real row
//! kernels.
//!
//! Every round builds seeded pseudo-random fields on a TeaLeaf mesh,
//! computes the row-kernel reductions (`calc_2norm`, `field_summary`,
//! `cg_calc_w`) once with [`SerialExec`] as the reference, then replays
//! them under [`PermutedExec`]-wrapped [`StaticPool`]s and
//! [`StealPool`]s of several widths — schedules the real pools could
//! legally produce, permuted into hostile orders. The determinism
//! contract (one partial per index, folded in index order) makes
//! bit-identical results mandatory; any drift is reported with the
//! schedule that produced it so the seed replays it exactly.
//!
//! A deliberately tiny mesh (fewer rows than workers) rides along in
//! every round to keep the `StaticPool` inline small-`n` fast path under
//! permutation pressure — the interaction the fix in
//! `parpool::permute` pins down.

use parpool::{Executor, PermutedExec, SerialExec, StaticPool, StealPool};
use tea_core::mesh::Mesh2d;
use tealeaf::ports::common::{self, Us};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A field of seeded positive values in `[0.5, 1.5)` — dense mantissas,
/// no special values, so reassociation errors cannot hide behind zeros.
fn random_field(state: &mut u64, len: usize) -> Vec<f64> {
    (0..len)
        .map(|_| 0.5 + (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64)
        .collect()
}

/// What a completed fuzz run covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzReport {
    pub rounds: usize,
    /// (pool, permutation-seed) schedules exercised.
    pub schedules: usize,
    /// Individual bit-exact comparisons that all passed.
    pub comparisons: usize,
}

struct Workload {
    mesh: Mesh2d,
    u: Vec<f64>,
    density: Vec<f64>,
    energy: Vec<f64>,
    p: Vec<f64>,
    kx: Vec<f64>,
    ky: Vec<f64>,
}

impl Workload {
    fn build(state: &mut u64, x_cells: usize, y_cells: usize) -> Workload {
        let mesh = Mesh2d::new(x_cells, y_cells, 2, (0.0, 10.0), (0.0, 10.0));
        let len = mesh.len();
        Workload {
            u: random_field(state, len),
            density: random_field(state, len),
            energy: random_field(state, len),
            p: random_field(state, len),
            kx: random_field(state, len),
            ky: random_field(state, len),
            mesh,
        }
    }

    fn rows(&self) -> usize {
        self.mesh.j1() - self.mesh.i0()
    }

    /// The three reductions of one schedule: `‖u‖²`, the 4-component
    /// field summary, and `p·Ap` with the `w = A·p` stencil written as a
    /// side effect (returned for bit comparison too).
    fn reduce(&self, exec: &dyn Executor) -> (f64, [f64; 4], f64, Vec<f64>) {
        let (mesh, i0) = (&self.mesh, self.mesh.i0());
        let n = self.rows();
        let norm = exec.run_sum(n, &|j| common::row_norm(mesh, i0 + j, &self.u));
        let vol = mesh.cell_volume();
        let summary = exec.run_sum4(n, &|j| {
            common::row_summary(mesh, i0 + j, &self.density, &self.energy, &self.u, vol)
        });
        let mut w = vec![0.0; mesh.len()];
        let pw = {
            let ws = Us::new(&mut w);
            exec.run_sum(n, &|j| {
                // SAFETY: each row is written by exactly one index.
                unsafe { common::row_cg_calc_w(mesh, i0 + j, &self.p, &self.kx, &self.ky, &ws) }
            })
        };
        (norm, summary, pw, w)
    }
}

fn bits_equal(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

/// Run `rounds` rounds of schedule fuzzing from `seed`. `Err` carries
/// the first divergence with enough context to replay it.
pub fn run_schedule_fuzz(seed: u64, rounds: usize) -> Result<FuzzReport, String> {
    let static_pools: Vec<StaticPool> = [2, 3, 5, 8].map(StaticPool::new).into_iter().collect();
    let steal_pools: Vec<StealPool> = [2, 4].map(StealPool::new).into_iter().collect();
    let mut pools: Vec<(String, &dyn Executor)> = Vec::new();
    for p in &static_pools {
        pools.push((format!("StaticPool({})", p.threads()), p as &dyn Executor));
    }
    for p in &steal_pools {
        pools.push((format!("StealPool({})", p.threads()), p as &dyn Executor));
    }

    let mut state = seed;
    let mut schedules = 0;
    let mut comparisons = 0;
    for round in 0..rounds {
        // A production-shaped mesh plus a tiny one with fewer rows than
        // any pool has workers (inline fast-path coverage).
        let workloads = [
            Workload::build(&mut state, 41, 29),
            Workload::build(&mut state, 16, 5),
        ];
        for (wi, workload) in workloads.iter().enumerate() {
            let (norm0, sum0, pw0, w0) = workload.reduce(&SerialExec);
            for (name, pool) in &pools {
                let perm_seed = splitmix64(&mut state);
                let permuted = PermutedExec::new(*pool, perm_seed);
                let (norm, sum, pw, w) = workload.reduce(&permuted);
                schedules += 1;
                let fail = |what: &str| {
                    Err(format!(
                        "schedule fuzz divergence: {what} under {name} \
                         (round {round}, workload {wi}, perm seed {perm_seed:#x}, fuzz seed {seed:#x})"
                    ))
                };
                if !bits_equal(norm, norm0) {
                    return fail("calc_2norm");
                }
                if !(0..4).all(|q| bits_equal(sum[q], sum0[q])) {
                    return fail("field_summary");
                }
                if !bits_equal(pw, pw0) {
                    return fail("cg_calc_w reduction");
                }
                if w.iter().zip(&w0).any(|(a, b)| !bits_equal(*a, *b)) {
                    return fail("cg_calc_w stencil field");
                }
                comparisons += 3 + 4 + w.len();
            }
        }
    }
    Ok(FuzzReport {
        rounds,
        schedules,
        comparisons,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_round_of_fuzzing_is_clean() {
        let report = run_schedule_fuzz(0xC0FFEE, 1).expect("deterministic reductions");
        assert_eq!(report.rounds, 1);
        assert_eq!(report.schedules, 2 * 6, "2 workloads x 6 pools");
        assert!(report.comparisons > 0);
    }

    #[test]
    fn fuzz_is_reproducible() {
        assert_eq!(run_schedule_fuzz(7, 1), run_schedule_fuzz(7, 1));
    }
}
