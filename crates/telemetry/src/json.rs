//! A minimal recursive-descent JSON parser.
//!
//! The workspace vendors no serialization stack, but the exporter schema
//! tests and `tea-prof --validate` need to prove the emitted traces
//! *parse* — so this module implements just enough of RFC 8259 to load
//! what [`crate::export`] writes (and any other well-formed document).

use std::fmt;

/// A parsed JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup for objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, ch: u8) -> Result<(), JsonError> {
        if self.peek() == Some(ch) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", ch as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by our
                            // emitters; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let doc = r#"{"a": 1.5e3, "b": [true, false, null, "x\ny"], "c": {"d": -0.25}}"#;
        let v = parse(doc).expect("parses");
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1500.0));
        let arr = v.get("b").and_then(Json::as_array).expect("array");
        assert_eq!(arr.len(), 4);
        assert_eq!(arr[3].as_str(), Some("x\ny"));
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")).and_then(Json::as_f64),
            Some(-0.25)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1, 2", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn escaped_and_raw_unicode_decode() {
        let v = parse("\"caf\\u00e9\"").expect("parses");
        assert_eq!(v.as_str(), Some("café"));
    }

    #[test]
    fn raw_multibyte_passthrough() {
        let v = parse(r#""café café""#).expect("parses");
        assert_eq!(v.as_str(), Some("café café"));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
    }
}
