//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no crates.io access, so the workspace ships the
//! subset of the `parking_lot` API it actually uses — `Mutex`, `MutexGuard`,
//! `Condvar`, `RwLock` — implemented over `std::sync`. Lock poisoning is
//! absorbed (`parking_lot` has no poisoning): a poisoned `std` lock is
//! re-entered, matching `parking_lot` semantics where a panicking holder
//! simply releases the lock.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock with the `parking_lot::Mutex` API.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable with the `parking_lot::Condvar` API (waits take the
/// guard by `&mut` instead of by value).
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing `guard`'s lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard already waiting");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses. Returns `true` if the
    /// wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let g = guard.inner.take().expect("guard already waiting");
        let (g, result) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        result.timed_out()
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock with the `parking_lot::RwLock` API.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let ready = Arc::new(AtomicBool::new(false));
        let (pair2, ready2) = (Arc::clone(&pair), Arc::clone(&ready));
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
            ready2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(10));
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
        assert!(ready.load(Ordering::SeqCst));
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)));
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
