//! `forall` dispatch: the recoupling of loop body to traversal.

use parpool::Executor;
use simdev::{KernelProfile, SimContext};

use crate::indexset::{IndexSet, Segment};
use crate::policy::ExecPolicy;

/// The RAJA runtime: a host executor plus the simulated-device context.
pub struct RajaRuntime<'a> {
    ctx: &'a SimContext,
    exec: &'a dyn Executor,
}

impl<'a> RajaRuntime<'a> {
    /// Bind a runtime to a device context and host executor.
    pub fn new(ctx: &'a SimContext, exec: &'a dyn Executor) -> Self {
        RajaRuntime { ctx, exec }
    }

    /// The simulated-device context.
    pub fn ctx(&self) -> &SimContext {
        self.ctx
    }
}

/// Finalise a launch profile for a segment: list segments fetch through an
/// indirection array, which the cost model charges with extra index
/// traffic and a lost-vectorization penalty (§4.1).
fn profile_for(seg: &Segment, profile: &KernelProfile) -> KernelProfile {
    if seg.is_indirect() {
        profile.clone().with_indirection()
    } else {
        profile.clone()
    }
}

/// `RAJA::forall<P>(segment, lambda)` — execute `f` over every index the
/// segment yields.
pub fn forall<P: ExecPolicy>(
    rt: &RajaRuntime<'_>,
    seg: &Segment,
    profile: &KernelProfile,
    f: &(dyn Fn(usize) + Sync),
) {
    rt.ctx.launch(&profile_for(seg, profile));
    let n = seg.len();
    if P::PARALLEL {
        rt.exec.run(n, &|k| f(seg.at(k)));
    } else {
        for k in 0..n {
            f(seg.at(k));
        }
    }
}

/// `RAJA::forall` with a `ReduceSum`: one partial per iteration position,
/// joined in position order (deterministic for any executor).
pub fn forall_sum<P: ExecPolicy>(
    rt: &RajaRuntime<'_>,
    seg: &Segment,
    profile: &KernelProfile,
    f: &(dyn Fn(usize) -> f64 + Sync),
) -> f64 {
    rt.ctx.launch(&profile_for(seg, profile));
    let n = seg.len();
    if P::PARALLEL {
        rt.exec.run_sum(n, &|k| f(seg.at(k)))
    } else {
        (0..n).map(|k| f(seg.at(k))).sum()
    }
}

/// Multi-variable reduction — the paper's port had to write "our own
/// implementations of the dispatch functions, to handle situations where
/// we had multiple reduction variables" (§3.4); this is that custom
/// dispatch.
pub fn forall_sum_many<P: ExecPolicy, const K: usize>(
    rt: &RajaRuntime<'_>,
    seg: &Segment,
    profile: &KernelProfile,
    f: &(dyn Fn(usize) -> [f64; K] + Sync),
) -> [f64; K] {
    rt.ctx.launch(&profile_for(seg, profile));
    let n = seg.len();
    if P::PARALLEL {
        parpool::run_sum_many(rt.exec, n, &|k| f(seg.at(k)))
    } else {
        let mut acc = [0.0; K];
        for k in 0..n {
            let v = f(seg.at(k));
            for i in 0..K {
                acc[i] += v[i];
            }
        }
        acc
    }
}

/// Dispatch every segment of an [`IndexSet`] in order, each as its own
/// launch (RAJA aggregates segments by type and dispatches them through a
/// loop template, §2.3).
pub fn forall_set<P: ExecPolicy>(
    rt: &RajaRuntime<'_>,
    set: &IndexSet,
    profile: &KernelProfile,
    f: &(dyn Fn(usize) + Sync),
) {
    for seg in set.segments() {
        forall::<P>(rt, seg, profile, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indexset::{IndexSet, ListSegment, RangeSegment};
    use crate::policy::{OmpParallelForExec, SeqExec};
    use parpool::SerialExec;
    use simdev::{devices, ModelProfile};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn ctx() -> SimContext {
        SimContext::new(
            devices::cpu_xeon_e5_2670_x2(),
            ModelProfile::ideal("RAJA"),
            vec![],
            1,
        )
    }

    fn profile() -> KernelProfile {
        KernelProfile::streaming("raja_kernel", 100, 2, 1, 2)
    }

    #[test]
    fn range_forall_covers_indices() {
        let ctx = ctx();
        let rt = RajaRuntime::new(&ctx, &SerialExec);
        let seg = Segment::Range(RangeSegment::new(5, 10));
        let hits: Vec<AtomicUsize> = (0..12).map(|_| AtomicUsize::new(0)).collect();
        forall::<SeqExec>(&rt, &seg, &profile(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            let expect = usize::from((5..10).contains(&i));
            assert_eq!(h.load(Ordering::Relaxed), expect, "index {i}");
        }
    }

    #[test]
    fn list_forall_follows_list() {
        let ctx = ctx();
        let rt = RajaRuntime::new(&ctx, &SerialExec);
        let seg = Segment::List(ListSegment::new(vec![2, 7, 3]));
        let order = std::sync::Mutex::new(Vec::new());
        forall::<SeqExec>(&rt, &seg, &profile(), &|i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), vec![2, 7, 3]);
    }

    #[test]
    fn list_dispatch_is_charged_as_indirect() {
        let ctx = ctx();
        let rt = RajaRuntime::new(&ctx, &SerialExec);
        let range = Segment::Range(RangeSegment::new(0, 1_000_000));
        let list = Segment::List(ListSegment::new((0..1_000_000).collect()));
        let p = KernelProfile::streaming("k", 1_000_000, 3, 1, 3);
        forall::<SeqExec>(&rt, &range, &p, &|_| {});
        let t_range = ctx.clock.snapshot().seconds;
        forall::<SeqExec>(&rt, &list, &p, &|_| {});
        let t_list = ctx.clock.snapshot().seconds - t_range;
        assert!(
            t_list > 1.25 * t_range,
            "indirection must cost: {t_list} vs {t_range}"
        );
    }

    #[test]
    fn reduce_sum_deterministic_across_policies() {
        let ctx = ctx();
        let pool = parpool::StaticPool::new(4);
        let rt_par = RajaRuntime::new(&ctx, &pool);
        let rt_seq = RajaRuntime::new(&ctx, &SerialExec);
        let seg = Segment::Range(RangeSegment::new(0, 10_000));
        let f = |i: usize| ((i as f64) * 0.01).sin();
        let a = forall_sum::<OmpParallelForExec>(&rt_par, &seg, &profile(), &f);
        let b = forall_sum::<SeqExec>(&rt_seq, &seg, &profile(), &f);
        assert_eq!(a, b);
    }

    #[test]
    fn multi_reduce() {
        let ctx = ctx();
        let rt = RajaRuntime::new(&ctx, &SerialExec);
        let seg = Segment::Range(RangeSegment::new(0, 4));
        let [s, q] =
            forall_sum_many::<SeqExec, 2>(&rt, &seg, &profile(), &|i| [i as f64, (i * i) as f64]);
        assert_eq!(s, 6.0);
        assert_eq!(q, 14.0);
    }

    #[test]
    fn indexset_dispatches_each_segment() {
        let ctx = ctx();
        let rt = RajaRuntime::new(&ctx, &SerialExec);
        let mut set = IndexSet::new();
        set.push_range(RangeSegment::new(0, 3));
        set.push_list(ListSegment::new(vec![8, 9]));
        let count = AtomicUsize::new(0);
        forall_set::<SeqExec>(&rt, &set, &profile(), &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 5);
        assert_eq!(ctx.clock.snapshot().kernels, 2, "one launch per segment");
    }
}
