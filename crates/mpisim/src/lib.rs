//! # mpisim
//!
//! An MPI-like message-passing layer over threads.
//!
//! The paper observes that all of the evaluated programming models "focus
//! on node-level parallelism and exclude support for inter-node
//! communications, which is handled with MPI in TeaLeaf" (§3). This crate
//! is that missing layer for the reproduction: an SPMD world of ranks
//! (each a real OS thread), point-to-point `send`/`recv` with tags, and
//! the deterministic collectives the mini-app needs (`allreduce_sum`,
//! `barrier`).
//!
//! ## Determinism
//!
//! `allreduce_sum` gathers contributions and combines them **in rank
//! order**, so a distributed dot product equals the single-chunk
//! row-ordered reduction bit-for-bit when ranks own contiguous row
//! stripes — the property `tealeaf::distributed` relies on to prove the
//! decomposition exact.
//!
//! ## Example
//!
//! ```
//! use mpisim::run_spmd;
//!
//! let results = run_spmd(4, |rank| {
//!     let next = (rank.id() + 1) % rank.size();
//!     let prev = (rank.id() + rank.size() - 1) % rank.size();
//!     rank.send(next, 0, vec![rank.id() as f64]);
//!     let from_prev = rank.recv(prev, 0)[0];
//!     rank.allreduce_sum(from_prev)
//! });
//! assert_eq!(results, vec![6.0; 4]); // 0+1+2+3 on every rank
//! ```

pub mod fault;
pub mod metrics;
pub mod topology;
pub mod world;

pub use fault::{FaultSpec, KillSpec, PartitionSpec};
pub use metrics::{ExchangeMetrics, TransportMetrics};
pub use topology::{dir_tag, Dir, Grid2d};
pub use world::{run_spmd, run_spmd_faulty, DataFault, FaultDiagnostic, Rank, Tag};
