//! Kernel profiles: what the cost model needs to know about one launch.
//!
//! Every programming-model port describes each kernel launch with a
//! [`KernelProfile`] — the bytes it streams, the elements it covers and the
//! structural traits that interact with the device (stencil vs streaming,
//! reduction, interior branch, indirection). The numbers are computed from
//! the *actual* mesh being solved, so simulated time tracks the real
//! executed workload.

/// Structural properties of a kernel that the cost model reacts to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelTraits {
    /// Pure data-streaming kernel (axpy-like): bandwidth-bound, benefits
    /// maximally from vectorization.
    pub streaming: bool,
    /// 5-point stencil kernel: neighbour reads, still bandwidth-bound.
    pub stencil: bool,
    /// Performs a global reduction (dot product / norm).
    pub reduction: bool,
    /// Has a data-dependent conditional in the loop body (the flat-index
    /// halo guard of the paper's Kokkos port, §3.3).
    pub interior_branch: bool,
    /// Iterates through an indirection list (RAJA `ListSegment`, §3.4):
    /// adds index traffic and defeats vectorization.
    pub indirection: bool,
    /// Rides the previous launch instead of being dispatched on its own
    /// (the second sweep of a fused kernel): charged for its data traffic
    /// but pays no launch overhead, offload latency or reduction sync.
    pub fused_tail: bool,
}

/// A description of one kernel launch for costing purposes.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Kernel name, e.g. `"cg_calc_w"`. Quirk rules match on prefixes.
    pub name: &'static str,
    /// Elements (cells) processed.
    pub elems: u64,
    /// Application bytes read (excluding model-added traffic).
    pub bytes_read: u64,
    /// Application bytes written.
    pub bytes_written: u64,
    /// Floating-point operations (informational; TeaLeaf is BW-bound).
    pub flops: u64,
    /// Bytes the kernel's arrays occupy — drives the cache-knee model.
    /// Defaults to `bytes_read + bytes_written` via [`KernelProfile::new`].
    pub working_set: u64,
    pub traits: KernelTraits,
}

impl KernelProfile {
    /// Build a profile over `elems` cells that reads `reads` arrays and
    /// writes `writes` arrays of f64, with `flops_per_elem` flops each.
    pub fn new(
        name: &'static str,
        elems: u64,
        reads: u64,
        writes: u64,
        flops_per_elem: u64,
        traits: KernelTraits,
    ) -> Self {
        let bytes_read = elems * reads * 8;
        let bytes_written = elems * writes * 8;
        KernelProfile {
            name,
            elems,
            bytes_read,
            bytes_written,
            flops: elems * flops_per_elem,
            working_set: bytes_read + bytes_written,
            traits,
        }
    }

    /// Total application bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// A streaming (axpy-like) kernel.
    pub fn streaming(name: &'static str, elems: u64, reads: u64, writes: u64, flops: u64) -> Self {
        KernelProfile::new(
            name,
            elems,
            reads,
            writes,
            flops,
            KernelTraits {
                streaming: true,
                ..KernelTraits::default()
            },
        )
    }

    /// A 5-point stencil kernel (`reads` counts arrays touched; neighbour
    /// reuse means each array still streams once through DRAM).
    pub fn stencil(name: &'static str, elems: u64, reads: u64, writes: u64, flops: u64) -> Self {
        KernelProfile::new(
            name,
            elems,
            reads,
            writes,
            flops,
            KernelTraits {
                stencil: true,
                ..KernelTraits::default()
            },
        )
    }

    /// A reduction kernel (dot product / norm).
    pub fn reduction(name: &'static str, elems: u64, reads: u64, flops: u64) -> Self {
        KernelProfile::new(
            name,
            elems,
            reads,
            // partials written once per element slot in the deterministic
            // scheme, but devices write only per-block results; charge one
            // result array of negligible size as zero writes.
            0,
            flops,
            KernelTraits {
                streaming: true,
                reduction: true,
                ..KernelTraits::default()
            },
        )
    }

    /// Mark this kernel as carrying a halo-guard branch in its body.
    pub fn with_interior_branch(mut self) -> Self {
        self.traits.interior_branch = true;
        self
    }

    /// Mark this kernel as traversing an indirection list.
    pub fn with_indirection(mut self) -> Self {
        self.traits.indirection = true;
        self
    }

    /// Mark this kernel as the tail sweep of a fused launch: it pays for
    /// its data traffic but not for a dispatch of its own.
    pub fn with_fused_tail(mut self) -> Self {
        self.traits.fused_tail = true;
        self
    }

    /// Override the working-set estimate (e.g. the whole solver state
    /// rather than only this kernel's arrays).
    pub fn with_working_set(mut self, bytes: u64) -> Self {
        self.working_set = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_accounting() {
        let p = KernelProfile::new("k", 1000, 3, 1, 5, KernelTraits::default());
        assert_eq!(p.bytes_read, 24_000);
        assert_eq!(p.bytes_written, 8_000);
        assert_eq!(p.bytes(), 32_000);
        assert_eq!(p.flops, 5_000);
        assert_eq!(p.working_set, 32_000);
    }

    #[test]
    fn builders_set_traits() {
        assert!(KernelProfile::streaming("s", 10, 2, 1, 2).traits.streaming);
        assert!(KernelProfile::stencil("t", 10, 4, 1, 9).traits.stencil);
        let r = KernelProfile::reduction("d", 10, 2, 2);
        assert!(r.traits.reduction && r.traits.streaming);
        assert_eq!(r.bytes_written, 0);
    }

    #[test]
    fn modifiers_chain() {
        let p = KernelProfile::streaming("s", 10, 1, 1, 1)
            .with_interior_branch()
            .with_indirection()
            .with_working_set(1 << 20);
        assert!(p.traits.interior_branch);
        assert!(p.traits.indirection);
        assert_eq!(p.working_set, 1 << 20);
    }
}
