//! Device specifications.
//!
//! A [`DeviceSpec`] captures the handful of architectural parameters the
//! cost model needs. The three constructors in [`devices`] are the paper's
//! evaluation platforms with Table 2's measured bandwidths.

/// Broad device class; model efficiency factors are keyed on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Host shared-memory CPU (no offload).
    Cpu,
    /// Discrete GPU behind a PCIe link.
    Gpu,
    /// Many-core accelerator card (Knights Corner): in-order cores, wide
    /// vectors, offload or native execution.
    Accelerator,
}

impl DeviceKind {
    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::Cpu => "cpu",
            DeviceKind::Gpu => "gpu",
            DeviceKind::Accelerator => "knc",
        }
    }
}

/// Architectural parameters of one simulated device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Human-readable device name (appears in every report).
    pub name: String,
    pub kind: DeviceKind,
    /// Theoretical peak memory bandwidth, GB/s (Table 2 "Peak BW").
    pub peak_bw_gbs: f64,
    /// Sustained STREAM bandwidth, GB/s (Table 2 "STREAM BW") — the
    /// denominator of Figure 12.
    pub stream_bw_gbs: f64,
    /// Last-level cache capacity in bytes; working sets below this see
    /// `cache_bw_gbs` instead of stream bandwidth (the Figure 11 CPU knee).
    pub llc_bytes: u64,
    /// Effective bandwidth for cache-resident working sets, GB/s.
    pub cache_bw_gbs: f64,
    /// Hardware cores / multiprocessors.
    pub cores: usize,
    /// SIMD lanes per core (doubles per element for f64 irrelevant; this is
    /// the *relative* width that makes vectorization matter).
    pub simd_width: usize,
    /// Device-side cost of dispatching one kernel, microseconds.
    pub launch_overhead_us: f64,
    /// Host→device command latency for offloaded execution, microseconds
    /// (zero for the CPU, PCIe-ish for GPU/KNC).
    pub offload_latency_us: f64,
    /// Host↔device transfer bandwidth, GB/s (PCIe gen2 x16 ≈ 6 GB/s).
    pub pcie_bw_gbs: f64,
    /// Time for a device-wide reduction/synchronisation, microseconds.
    pub reduction_cost_us: f64,
    /// Slowdown multiplier for kernels with a data-dependent branch in the
    /// body (the KNC halo-guard problem, paper §3.3/§4.3).
    pub branch_penalty: f64,
    /// Slowdown multiplier for streaming kernels that fail to vectorize
    /// (the RAJA indirection problem, paper §4.1).
    pub novec_penalty: f64,
    /// Scale applied to every *fixed* per-operation cost (device and model
    /// launch overheads, offload latency, reduction sync). 1.0 for real
    /// devices; the benchmark harness lowers it on reduced functional
    /// meshes to emulate the paper's convergence-mesh regime, where those
    /// overheads are amortised (§5).
    pub overhead_scale: f64,
    /// Board power at rest, watts: what the device draws while the host
    /// does bookkeeping or a transfer is in flight. Energy accounting is
    /// derived from the simulated time stream and never feeds back into
    /// kernel times, so these figures are numerically inert (see
    /// EXPERIMENTS.md for the calibration sources).
    pub idle_watts: f64,
    /// Board power under a bandwidth-bound kernel, watts. The per-kernel
    /// energy rule charges `idle + (active − idle) · utilisation(kind) ·
    /// energy_factor(model)` watts over the kernel's simulated seconds.
    pub active_watts: f64,
    /// Link energy per byte moved over the host↔device interconnect,
    /// picojoules (zero for the CPU: no explicit transfers).
    pub transfer_pj_per_byte: f64,
}

impl DeviceSpec {
    /// Effective raw bandwidth (bytes/second) for a kernel whose working
    /// set is `ws` bytes: cache bandwidth when resident, STREAM bandwidth
    /// when far larger, smoothly interpolated in between.
    pub fn bw_for_working_set(&self, ws: u64) -> f64 {
        let stream = self.stream_bw_gbs * 1e9;
        let cache = self.cache_bw_gbs * 1e9;
        if self.llc_bytes == 0 || cache <= stream {
            return stream;
        }
        let llc = self.llc_bytes as f64;
        let ws = ws as f64;
        if ws <= llc {
            cache
        } else if ws >= 4.0 * llc {
            stream
        } else {
            // linear blend over [llc, 4·llc]
            let t = (ws - llc) / (3.0 * llc);
            cache + (stream - cache) * t
        }
    }

    /// Does running on this device require explicit host↔device transfers?
    pub fn is_offload(&self) -> bool {
        !matches!(self.kind, DeviceKind::Cpu)
    }
}

/// The paper's evaluation devices (Table 2) plus a builder for custom ones.
pub mod devices {
    use super::*;

    /// Dual-socket Intel Xeon E5-2670 (2× 8-core Sandy Bridge, 16 threads,
    /// affinity compact). Peak 102.4 GB/s, STREAM 76.2 GB/s.
    pub fn cpu_xeon_e5_2670_x2() -> DeviceSpec {
        DeviceSpec {
            name: "Xeon E5-2670 CPU x 2".into(),
            kind: DeviceKind::Cpu,
            peak_bw_gbs: 102.4,
            stream_bw_gbs: 76.2,
            llc_bytes: 40 * 1024 * 1024, // 2 × 20 MB L3
            cache_bw_gbs: 160.0,
            cores: 16,
            simd_width: 4,           // AVX, 4 × f64
            launch_overhead_us: 0.8, // omp parallel-region fork/join
            offload_latency_us: 0.0,
            pcie_bw_gbs: f64::INFINITY,
            reduction_cost_us: 1.2,
            branch_penalty: 1.05,
            novec_penalty: 1.2, // AVX vs scalar on streaming loops
            overhead_scale: 1.0,
            idle_watts: 70.0,    // 2 sockets at ~35 W package idle
            active_watts: 230.0, // 2 × 115 W TDP held near the DRAM wall
            transfer_pj_per_byte: 0.0,
        }
    }

    /// NVIDIA Tesla K20X (Kepler GK110, 14 SMX). Peak 250 GB/s, STREAM
    /// (GPU-STREAM triad) 180.1 GB/s.
    pub fn gpu_k20x() -> DeviceSpec {
        DeviceSpec {
            name: "NVIDIA K20X GPU".into(),
            kind: DeviceKind::Gpu,
            peak_bw_gbs: 250.0,
            stream_bw_gbs: 180.1,
            llc_bytes: 1536 * 1024, // 1.5 MB L2 — too small to matter
            cache_bw_gbs: 180.1,    // no cache plateau modelled
            cores: 14,
            simd_width: 32, // warp
            launch_overhead_us: 7.0,
            offload_latency_us: 6.0,
            pcie_bw_gbs: 6.0,
            reduction_cost_us: 18.0, // device-wide tree + result readback
            branch_penalty: 1.03,    // a uniform halo guard barely diverges
            novec_penalty: 1.0,      // SIMT: no scalar fallback cliff
            overhead_scale: 1.0,
            idle_watts: 25.0,            // K20-class board idle
            active_watts: 200.0,         // bandwidth-bound draw under the 235 W TDP
            transfer_pj_per_byte: 150.0, // PCIe gen2 link energy
        }
    }

    /// Intel Xeon Phi 5110P / SE10P Knights Corner (60–61 in-order cores,
    /// 4 hw threads each, 512-bit vectors). Peak 320 GB/s, STREAM 159.9.
    pub fn knc_xeon_phi() -> DeviceSpec {
        DeviceSpec {
            name: "Xeon Phi 5110P KNC".into(),
            kind: DeviceKind::Accelerator,
            peak_bw_gbs: 320.0,
            stream_bw_gbs: 159.9,
            llc_bytes: 30 * 1024 * 1024, // 60 × 512 kB L2
            cache_bw_gbs: 220.0,
            cores: 60,
            simd_width: 8,            // 512-bit, 8 × f64
            launch_overhead_us: 14.0, // slow cores run the runtime too
            offload_latency_us: 9.0,
            pcie_bw_gbs: 6.0,
            reduction_cost_us: 40.0, // 240 threads to synchronise
            branch_penalty: 2.1,     // in-order, masked-vector conditionals
            novec_penalty: 2.4,      // scalar code wastes 8-wide vectors
            overhead_scale: 1.0,
            idle_watts: 105.0,   // KNC idles hot: 60 ring-stop cores + GDDR5
            active_watts: 215.0, // near the 225 W TDP when streaming
            transfer_pj_per_byte: 150.0, // PCIe gen2 link energy
        }
    }

    /// All three paper devices in presentation order.
    pub fn paper_devices() -> Vec<DeviceSpec> {
        vec![cpu_xeon_e5_2670_x2(), gpu_k20x(), knc_xeon_phi()]
    }

    /// Start from a named kind with neutral parameters; intended for the
    /// `custom_device` example and for exploring hypothetical hardware.
    pub fn custom(name: &str, kind: DeviceKind, stream_bw_gbs: f64) -> DeviceSpec {
        DeviceSpec {
            name: name.into(),
            kind,
            peak_bw_gbs: stream_bw_gbs * 1.3,
            stream_bw_gbs,
            llc_bytes: 0,
            cache_bw_gbs: stream_bw_gbs,
            cores: 16,
            simd_width: 4,
            launch_overhead_us: 1.0,
            offload_latency_us: if matches!(kind, DeviceKind::Cpu) {
                0.0
            } else {
                6.0
            },
            pcie_bw_gbs: if matches!(kind, DeviceKind::Cpu) {
                f64::INFINITY
            } else {
                12.0
            },
            reduction_cost_us: 2.0,
            branch_penalty: 1.1,
            novec_penalty: 1.2,
            overhead_scale: 1.0,
            idle_watts: if matches!(kind, DeviceKind::Cpu) {
                60.0
            } else {
                30.0
            },
            active_watts: 200.0,
            transfer_pj_per_byte: if matches!(kind, DeviceKind::Cpu) {
                0.0
            } else {
                150.0
            },
        }
    }

    /// `device` with every power-model parameter zeroed: kernels, transfers
    /// and host gaps all charge zero joules, which the energy-inertness
    /// suite uses to prove the accounting never feeds back into time.
    pub fn unpowered(mut device: DeviceSpec) -> DeviceSpec {
        device.idle_watts = 0.0;
        device.active_watts = 0.0;
        device.transfer_pj_per_byte = 0.0;
        device
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        let cpu = devices::cpu_xeon_e5_2670_x2();
        assert_eq!(cpu.peak_bw_gbs, 102.4);
        assert_eq!(cpu.stream_bw_gbs, 76.2);
        let gpu = devices::gpu_k20x();
        assert_eq!(gpu.peak_bw_gbs, 250.0);
        assert_eq!(gpu.stream_bw_gbs, 180.1);
        let knc = devices::knc_xeon_phi();
        assert_eq!(knc.peak_bw_gbs, 320.0);
        assert_eq!(knc.stream_bw_gbs, 159.9);
    }

    #[test]
    fn stream_below_peak() {
        for d in devices::paper_devices() {
            assert!(d.stream_bw_gbs < d.peak_bw_gbs, "{}", d.name);
        }
    }

    #[test]
    fn cache_knee_monotonic() {
        let cpu = devices::cpu_xeon_e5_2670_x2();
        let small = cpu.bw_for_working_set(1024);
        let knee = cpu.bw_for_working_set(cpu.llc_bytes * 2);
        let big = cpu.bw_for_working_set(cpu.llc_bytes * 10);
        assert!(small > knee, "cache-resident must be faster");
        assert!(knee > big, "transition region between cache and DRAM");
        assert!((big - cpu.stream_bw_gbs * 1e9).abs() < 1.0);
        assert!((small - cpu.cache_bw_gbs * 1e9).abs() < 1.0);
    }

    #[test]
    fn gpu_has_no_cache_plateau() {
        let gpu = devices::gpu_k20x();
        assert_eq!(gpu.bw_for_working_set(1), gpu.bw_for_working_set(u64::MAX));
    }

    #[test]
    fn offload_classification() {
        assert!(!devices::cpu_xeon_e5_2670_x2().is_offload());
        assert!(devices::gpu_k20x().is_offload());
        assert!(devices::knc_xeon_phi().is_offload());
    }

    #[test]
    fn custom_builder() {
        let d = devices::custom("hbm-thing", DeviceKind::Accelerator, 400.0);
        assert_eq!(d.stream_bw_gbs, 400.0);
        assert!(d.is_offload());
        assert!(d.transfer_pj_per_byte > 0.0, "offload links cost energy");
        assert_eq!(
            devices::custom("host", DeviceKind::Cpu, 100.0).transfer_pj_per_byte,
            0.0
        );
    }

    #[test]
    fn power_figures_are_plausible() {
        for d in devices::paper_devices() {
            assert!(
                d.idle_watts > 0.0 && d.idle_watts < d.active_watts,
                "{}: idle must sit strictly below active draw",
                d.name
            );
            assert_eq!(
                d.transfer_pj_per_byte > 0.0,
                d.is_offload(),
                "{}: only offload devices pay link energy",
                d.name
            );
        }
        // the calibration anchors recorded in EXPERIMENTS.md
        assert_eq!(devices::cpu_xeon_e5_2670_x2().active_watts, 230.0);
        assert_eq!(devices::gpu_k20x().active_watts, 200.0);
        assert_eq!(devices::knc_xeon_phi().active_watts, 215.0);
        assert_eq!(devices::knc_xeon_phi().idle_watts, 105.0);
    }

    #[test]
    fn unpowered_zeroes_every_power_parameter() {
        let d = devices::unpowered(devices::gpu_k20x());
        assert_eq!(d.idle_watts, 0.0);
        assert_eq!(d.active_watts, 0.0);
        assert_eq!(d.transfer_pj_per_byte, 0.0);
        // nothing else moved
        assert_eq!(d.stream_bw_gbs, 180.1);
        assert_eq!(d.launch_overhead_us, 7.0);
    }
}
