//! Fused-CG determinism: ports whose IR lowering capability
//! ([`lowering_caps`](tealeaf::kernels::TeaLeafPort::lowering_caps))
//! can express a fused launch must produce *bit-identical* state through their fused
//! `cg_fused_ur_p` launch and the two-launch `cg_calc_ur` → `cg_calc_p`
//! schedule — same α/β history, same residual, same temperature field.
//!
//! This pins the claim the solver relies on when it picks the fused path:
//! fusion changes the launch schedule (one parallel region instead of
//! two), never the arithmetic or the reduction order.

use proptest::prelude::*;

use simdev::devices;
use tea_core::config::{SolverKind, TeaConfig};
use tea_core::halo::FieldId;
use tea_core::state::{Geometry, State};
use tealeaf::kernels::NormField;
use tealeaf::ports::make_port;
use tealeaf::{ModelId, Problem};

/// The per-iteration CG trace we compare across schedules, as raw bits.
#[derive(Debug, PartialEq, Eq)]
struct CgTrace {
    rrn_beta_bits: Vec<(u64, u64)>,
    r_norm_bits: u64,
    u_bits: Vec<u64>,
}

/// Bring a freshly constructed port to the start of the CG loop (the same
/// sequence `driver::drive` + `cg::run_phase` perform), then run `iters`
/// iterations with either the fused or the split schedule.
fn trace_cg(
    model: ModelId,
    device: &simdev::DeviceSpec,
    cfg: &TeaConfig,
    fused: bool,
    iters: usize,
) -> CgTrace {
    let problem = Problem::from_config(cfg).expect("valid config");
    let mut port = make_port(model, device.clone(), &problem, 1).expect("port must build");
    let (rx, ry) = problem.rx_ry();
    port.halo_update(&[FieldId::Density, FieldId::Energy0], 2);
    port.init_fields(cfg.coefficient, rx, ry);
    port.halo_update(&[FieldId::U], 1);

    let precond = cfg.tl_preconditioner;
    let mut rro = port.cg_init(precond);
    let mut rrn_beta_bits = Vec::with_capacity(iters);
    for _ in 0..iters {
        port.halo_update(&[FieldId::P], 1);
        let pw = port.cg_calc_w();
        let alpha = rro / pw;
        let (rrn, beta) = if fused {
            assert!(
                tealeaf::ir::fusion_active(port.lowering_caps(), tealeaf::ir::FusionKind::CgTail),
                "{model:?} lost its fusion capability"
            );
            port.cg_fused_ur_p(alpha, rro, precond)
        } else {
            let rrn = port.cg_calc_ur(alpha, precond);
            let beta = rrn / rro;
            port.cg_calc_p(beta, precond);
            (rrn, beta)
        };
        rrn_beta_bits.push((rrn.to_bits(), beta.to_bits()));
        rro = rrn;
    }
    CgTrace {
        rrn_beta_bits,
        r_norm_bits: port.calc_2norm(NormField::R).to_bits(),
        u_bits: port.read_u().iter().map(|v| v.to_bits()).collect(),
    }
}

/// Every (fused port, device) pairing the solver can select.
fn fused_pairings() -> Vec<(ModelId, simdev::DeviceSpec)> {
    let cpu = devices::cpu_xeon_e5_2670_x2();
    let gpu = devices::gpu_k20x();
    vec![
        (ModelId::Omp3F90, cpu.clone()),
        (ModelId::Omp3Cpp, cpu.clone()),
        (ModelId::Kokkos, gpu.clone()),
        (ModelId::KokkosHP, gpu.clone()),
        (ModelId::Cuda, gpu.clone()),
        (ModelId::OpenCl, gpu),
        (ModelId::OpenCl, cpu), // steal-pool executor on the CPU runtime
    ]
}

fn random_config(cells: usize, hot_energy: f64, precond: bool) -> TeaConfig {
    let mut cfg = TeaConfig::paper_problem(cells);
    cfg.states = vec![
        State::background(2.0, 0.5),
        State {
            density: 0.3,
            energy: hot_energy,
            geometry: Geometry::Rectangle {
                xmin: 1.0,
                xmax: 6.0,
                ymin: 2.0,
                ymax: 7.0,
            },
        },
    ];
    cfg.solver = SolverKind::ConjugateGradient;
    cfg.tl_preconditioner = precond;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn fused_and_split_cg_bit_identical_on_random_meshes(
        cells in 12usize..40,
        hot_energy in 1.0..40.0f64,
        precond_pick in 0usize..2,
        iters in 3usize..12,
    ) {
        let cfg = random_config(cells, hot_energy, precond_pick == 1);
        for (model, device) in fused_pairings() {
            let fused = trace_cg(model, &device, &cfg, true, iters);
            let split = trace_cg(model, &device, &cfg, false, iters);
            prop_assert_eq!(
                &fused.rrn_beta_bits, &split.rrn_beta_bits,
                "{:?}/{}: fused rrn/β drifted from the split schedule", model, device.name
            );
            prop_assert_eq!(
                fused.r_norm_bits, split.r_norm_bits,
                "{:?}/{}: residual norm differs bitwise", model, device.name
            );
            prop_assert_eq!(
                fused.u_bits, split.u_bits,
                "{:?}/{}: temperature field differs bitwise", model, device.name
            );
        }
    }
}

#[test]
fn fusion_capability_is_where_the_design_says() {
    // The ports whose underlying runtimes can merge loop bodies advertise
    // fusion; serial (the oracle) and the directive analogues stay split.
    let cpu = devices::cpu_xeon_e5_2670_x2();
    let problem = Problem::from_config(&random_config(16, 5.0, false)).expect("valid config");
    for (model, expect) in [
        (ModelId::Serial, false),
        (ModelId::Omp3F90, true),
        (ModelId::Omp3Cpp, true),
        (ModelId::Omp4, false),
        (ModelId::OpenAcc, false),
        (ModelId::Raja, false),
        (ModelId::RajaSimd, false),
        (ModelId::Kokkos, true),
        (ModelId::KokkosHP, true),
        (ModelId::OpenCl, true),
    ] {
        let port = make_port(model, cpu.clone(), &problem, 1);
        if let Ok(port) = port {
            assert_eq!(
                port.lowering_caps().fused_launch,
                expect,
                "{model:?} fusion capability flag"
            );
        }
    }
    let gpu = devices::gpu_k20x();
    let cuda = make_port(ModelId::Cuda, gpu, &problem, 1).unwrap();
    assert!(
        cuda.lowering_caps().fused_launch,
        "Cuda fusion capability flag"
    );
}
