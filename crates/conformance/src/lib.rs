//! # tea-conformance
//!
//! Cross-port conformance harness for the TeaLeaf reproduction. The
//! paper's methodology rests on every port being *the same solver* —
//! "TeaLeaf's core solver logic and parameters were kept consistent
//! between ports" (§3) — which this repo strengthens to bit-identical
//! arithmetic. This crate is the machinery that keeps that claim honest:
//!
//! * [`diff`] — the differential executor. Any two ports run in
//!   lock-step through the real driver; after every kernel invocation
//!   their scalars and full field state are compared bit-for-bit, and
//!   the first mismatch is bisected to (kernel, invocation, solver
//!   iteration, field, cell index, ULP distance). CLI: `cargo run -p
//!   tea-conformance --bin tea-diff -- --ref serial --cand cuda`.
//! * [`golden`] — the committed golden-run registry: bit-exact run
//!   summaries for deck × solver × port (and mpisim rank counts),
//!   regenerated with `--bless`, byte-compared otherwise. CLI:
//!   `cargo run -p tea-conformance --bin tea-golden -- --check`.
//! * [`fuzz`] — the seeded schedule fuzzer: real row kernels under
//!   adversarially permuted `StaticPool`/`StealPool` schedules, with
//!   bit-identical reductions mandatory.
//! * [`faults`] — the mpisim fault matrix: distributed CG over seeded
//!   drop/duplicate/reorder/delay injection; recovered runs must be
//!   bit-identical, unrecoverable ones must abort loudly, and a
//!   silently-wrong answer fails the matrix.
//!
//! Everything here is test infrastructure: nothing in this crate is on
//! any measured path, and the observation hooks it relies on
//! ([`tealeaf::TeaLeafPort::inspect_field`] /
//! [`tealeaf::TeaLeafPort::poke_field`]) charge nothing to the device
//! cost model, so a diffed run observes the same simulated cost stream
//! as a plain one.

pub mod diff;
pub mod faults;
pub mod fuzz;
pub mod golden;
pub mod matrix;

pub use diff::{
    diff_models, diff_ports, DiffOutcome, DivergenceReport, LockstepPort, Mismatch, SabotageMode,
    SabotagePlan, SabotagedPort,
};
pub use faults::{
    fault_spec_for, run_chaos_matrix_2d, run_fault_matrix, run_fault_matrix_2d,
    run_fault_matrix_2d_recovering, run_fault_matrix_recovering, ChaosMatrixReport,
    FaultMatrixReport, RecoveryMatrixReport,
};
pub use fuzz::{run_schedule_fuzz, FuzzReport};
pub use golden::{check_deck, compute_goldens, GoldenEntry};
pub use matrix::{
    builtin_deck, builtin_decks, deck_config, model_name, natural_device, parse_model,
    GOLDEN_PORTS, GOLDEN_RANKS, GOLDEN_SOLVERS,
};
