//! Device memory and explicit copies.

use simdev::SimContext;

/// Device global memory (`cudaMalloc`'d storage).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
}

impl<T: Copy + Default> DeviceBuffer<T> {
    /// `cudaMalloc` + `cudaMemset(0)`: allocate `len` zeroed elements.
    pub fn alloc(len: usize) -> Self {
        DeviceBuffer {
            data: vec![T::default(); len],
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<T>()) as u64
    }

    /// Kernel-side read view (global memory).
    pub fn device(&self) -> &[T] {
        &self.data
    }

    /// Kernel-side mutable view (global memory).
    pub fn device_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

/// `cudaMemcpy(…, cudaMemcpyHostToDevice)`.
pub fn memcpy_htod<T: Copy + Default>(ctx: &SimContext, dst: &mut DeviceBuffer<T>, src: &[T]) {
    assert_eq!(dst.len(), src.len(), "memcpy size mismatch");
    dst.data.copy_from_slice(src);
    ctx.transfer(dst.bytes());
}

/// `cudaMemcpy(…, cudaMemcpyDeviceToHost)`.
pub fn memcpy_dtoh<T: Copy + Default>(ctx: &SimContext, dst: &mut [T], src: &DeviceBuffer<T>) {
    assert_eq!(dst.len(), src.len(), "memcpy size mismatch");
    dst.copy_from_slice(&src.data);
    ctx.transfer(src.bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdev::{devices, ModelProfile, SimContext};

    fn ctx() -> SimContext {
        SimContext::new(devices::gpu_k20x(), ModelProfile::ideal("CUDA"), vec![], 1)
    }

    #[test]
    fn alloc_is_zeroed() {
        let buf: DeviceBuffer<f64> = DeviceBuffer::alloc(16);
        assert_eq!(buf.len(), 16);
        assert_eq!(buf.bytes(), 128);
        assert!(buf.device().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn memcpy_roundtrip() {
        let ctx = ctx();
        let src: Vec<f64> = (0..8).map(|x| x as f64 * 1.5).collect();
        let mut dev = DeviceBuffer::alloc(8);
        memcpy_htod(&ctx, &mut dev, &src);
        let mut back = vec![0.0; 8];
        memcpy_dtoh(&ctx, &mut back, &dev);
        assert_eq!(back, src);
        let snap = ctx.clock.snapshot();
        assert_eq!(snap.transfers, 2);
        assert_eq!(snap.transfer_bytes, 128);
        assert!(snap.seconds > 0.0, "PCIe copies take simulated time");
    }

    #[test]
    #[should_panic]
    fn size_mismatch_rejected() {
        let ctx = ctx();
        let mut dev: DeviceBuffer<f64> = DeviceBuffer::alloc(4);
        memcpy_htod(&ctx, &mut dev, &[1.0; 5]);
    }
}
